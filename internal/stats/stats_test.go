package stats

import (
	"math"
	"testing"
	"testing/quick"

	"abw/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", m)
	}
	// Sample variance with n-1: sum sq dev = 32, / 7.
	if v := Variance(xs); !almostEq(v, 32.0/7, 1e-12) {
		t.Errorf("Variance = %g, want %g", v, 32.0/7)
	}
	if s := StdDev(xs); !almostEq(s, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %g", s)
	}
}

func TestMeanEmptyNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single value should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%g, %g), want (-1, 7)", min, max)
	}
}

func TestRelativeError(t *testing.T) {
	if e := RelativeError(110, 100); !almostEq(e, 0.1, 1e-12) {
		t.Errorf("RelativeError = %g, want 0.1", e)
	}
	if e := RelativeError(90, 100); !almostEq(e, -0.1, 1e-12) {
		t.Errorf("RelativeError = %g, want -0.1", e)
	}
	defer func() {
		if recover() == nil {
			t.Error("RelativeError with zero truth did not panic")
		}
	}()
	RelativeError(1, 0)
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.P(tc.x); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("P(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if q := c.Quantile(0); q != 10 {
		t.Errorf("Q(0) = %g, want 10", q)
	}
	if q := c.Quantile(1); q != 50 {
		t.Errorf("Q(1) = %g, want 50", q)
	}
	if q := c.Quantile(0.5); q != 30 {
		t.Errorf("Q(0.5) = %g, want 30", q)
	}
	if q := c.Quantile(0.25); q != 20 {
		t.Errorf("Q(0.25) = %g, want 20", q)
	}
}

func TestCDFQuantileMonotoneProperty(t *testing.T) {
	r := rng.New(1)
	sample := make([]float64, 200)
	for i := range sample {
		sample[i] = r.Norm()
	}
	c := NewCDF(sample)
	f := func(aRaw, bRaw uint8) bool {
		qa := float64(aRaw) / 255
		qb := float64(bRaw) / 255
		if qa > qb {
			qa, qb = qb, qa
		}
		return c.Quantile(qa) <= c.Quantile(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if !math.IsNaN(c.P(1)) || !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty CDF queries should be NaN")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2})
	xs, ps := c.Points()
	wantX := []float64{1, 2, 3}
	wantP := []float64{1.0 / 3, 2.0 / 3, 1}
	for i := range wantX {
		if xs[i] != wantX[i] || !almostEq(ps[i], wantP[i], 1e-12) {
			t.Fatalf("Points = (%v, %v)", xs, ps)
		}
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b, r2, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(a, 1, 1e-12) || !almostEq(b, 2, 1e-12) || !almostEq(r2, 1, 1e-12) {
		t.Errorf("fit = (%g, %g, %g), want (1, 2, 1)", a, b, r2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("constant x accepted")
	}
}

func TestAggregate(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	got := Aggregate(xs, 2)
	want := []float64{1.5, 3.5, 5.5}
	if len(got) != len(want) {
		t.Fatalf("Aggregate = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Aggregate = %v, want %v", got, want)
		}
	}
}

func TestAggregatePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Aggregate(k=0) did not panic")
		}
	}()
	Aggregate([]float64{1}, 0)
}

func TestHurstVTWhiteNoise(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 1<<15)
	for i := range xs {
		xs[i] = r.Norm()
	}
	h, err := HurstVT(xs, []int{1, 2, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.5) > 0.05 {
		t.Errorf("Hurst of white noise = %g, want ~0.5", h)
	}
}

func TestHurstVTNeedsLevels(t *testing.T) {
	if _, err := HurstVT([]float64{1, 2, 3}, []int{1}); err == nil {
		t.Error("single aggregation level accepted")
	}
}

func TestAutocorrelation(t *testing.T) {
	// Perfectly alternating series has lag-1 autocorrelation ≈ -1.
	xs := make([]float64, 1000)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	if ac := Autocorrelation(xs, 1); !almostEq(ac, -1, 0.01) {
		t.Errorf("lag-1 autocorr of alternating series = %g, want ~-1", ac)
	}
	if ac := Autocorrelation(xs, 0); !almostEq(ac, 1, 1e-12) {
		t.Errorf("lag-0 autocorr = %g, want 1", ac)
	}
	if !math.IsNaN(Autocorrelation(xs, -1)) {
		t.Error("negative lag should be NaN")
	}
}

func TestVarianceTime(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 1<<14)
	for i := range xs {
		xs[i] = r.Norm()
	}
	vt := VarianceTime(xs, []int{1, 4, 16})
	// IID: variance should drop by ~k.
	if !(vt[0] > vt[1] && vt[1] > vt[2]) {
		t.Errorf("variance-time not decreasing: %v", vt)
	}
	if ratio := vt[0] / vt[1]; math.Abs(ratio-4) > 1 {
		t.Errorf("Var[X]/Var[X^(4)] = %g, want ~4 (Eq. 4)", ratio)
	}
}
