// Package stats collects the statistical machinery the paper's analysis
// rests on: summary statistics, empirical CDFs and quantiles, the
// variance–time relation and Hurst estimation behind Equations (4)–(5),
// linear regression, relative-error metrics, and Pathload's PCT/PDT
// one-way-delay trend tests (the "increasing OWDs ≠ Ro < Ri" fallacy).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance, or NaN for fewer than
// two values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the extrema of xs; it panics on an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// RelativeError returns (estimate − truth)/truth, the paper's ε metric.
// It panics when truth is zero because ε is then undefined.
func RelativeError(estimate, truth float64) float64 {
	if truth == 0 {
		panic("stats: relative error with zero ground truth")
	}
	return (estimate - truth) / truth
}

// Median returns the middle value of xs — the mean of the two middle
// values for even lengths — or NaN for an empty slice. This is the one
// canonical median every consumer uses (the trend test's group
// reduction, pathChirp's jitter threshold, BFind's sustained-rise test,
// the probe feature extractor); it is deliberately the same algorithm
// as the trend test's internal median so the two can never drift.
func Median(xs []float64) float64 { return median(xs) }

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts the sample. An empty sample is allowed; all
// queries on it return NaN.
func NewCDF(sample []float64) *CDF {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// P returns the empirical probability P(X <= x).
func (c *CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th empirical quantile, q in [0, 1], using
// nearest-rank interpolation.
func (c *CDF) Quantile(q float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.sorted[lo]
	}
	frac := pos - float64(lo)
	return c.sorted[lo]*(1-frac) + c.sorted[hi]*frac
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// Points returns (x, P(X<=x)) pairs suitable for plotting the CDF as the
// paper's Figure 1 does.
func (c *CDF) Points() (xs, ps []float64) {
	n := len(c.sorted)
	xs = append([]float64(nil), c.sorted...)
	ps = make([]float64, n)
	for i := range ps {
		ps[i] = float64(i+1) / float64(n)
	}
	return xs, ps
}

// LinearFit fits y = a + b·x by least squares and returns the intercept,
// slope, and R². It requires at least two points with non-constant x.
func LinearFit(x, y []float64) (a, b, r2 float64, err error) {
	if len(x) != len(y) {
		return 0, 0, 0, fmt.Errorf("stats: mismatched lengths %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, 0, 0, fmt.Errorf("stats: linear fit needs at least 2 points")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, fmt.Errorf("stats: constant x, slope undefined")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		r2 = 1
	} else {
		var ssRes float64
		for i := range x {
			d := y[i] - (a + b*x[i])
			ssRes += d * d
		}
		r2 = 1 - ssRes/ssTot
	}
	return a, b, r2, nil
}

// Aggregate returns the k-aggregated series: consecutive blocks of k
// values replaced by their mean. The tail that does not fill a block is
// dropped. This is the operator in the paper's Equations (4)–(5).
func Aggregate(xs []float64, k int) []float64 {
	if k <= 0 {
		panic(fmt.Sprintf("stats: aggregation level %d must be positive", k))
	}
	n := len(xs) / k
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < k; j++ {
			s += xs[i*k+j]
		}
		out[i] = s / float64(k)
	}
	return out
}

// VarianceTime returns the variance of the k-aggregated series for each
// k in ks, the empirical variance–time relation.
func VarianceTime(xs []float64, ks []int) []float64 {
	out := make([]float64, len(ks))
	for i, k := range ks {
		out[i] = Variance(Aggregate(xs, k))
	}
	return out
}

// HurstVT estimates the Hurst parameter from the variance–time plot:
// Var[X^(k)] ~ k^{2H-2}, so the log-log slope β gives H = 1 + β/2.
func HurstVT(xs []float64, ks []int) (float64, error) {
	if len(ks) < 2 {
		return 0, fmt.Errorf("stats: Hurst estimation needs at least 2 aggregation levels")
	}
	lx := make([]float64, 0, len(ks))
	ly := make([]float64, 0, len(ks))
	for _, k := range ks {
		v := Variance(Aggregate(xs, k))
		if !(v > 0) || math.IsNaN(v) {
			continue
		}
		lx = append(lx, math.Log(float64(k)))
		ly = append(ly, math.Log(v))
	}
	if len(lx) < 2 {
		return 0, fmt.Errorf("stats: too few valid variance points")
	}
	_, slope, _, err := LinearFit(lx, ly)
	if err != nil {
		return 0, err
	}
	h := 1 + slope/2
	if h < 0 {
		h = 0
	}
	if h > 1 {
		h = 1
	}
	return h, nil
}

// Autocorrelation returns the lag-k sample autocorrelation of xs.
func Autocorrelation(xs []float64, k int) float64 {
	n := len(xs)
	if k < 0 || k >= n {
		return math.NaN()
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		den += (xs[i] - m) * (xs[i] - m)
	}
	for i := 0; i+k < n; i++ {
		num += (xs[i] - m) * (xs[i+k] - m)
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}
