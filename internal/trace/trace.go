// Package trace provides the packet-trace substrate standing in for the
// NLANR trace (ANL-1070432720, OC-3 access link of Argonne National
// Laboratory) that the paper's Figures 1 and 6 are computed from.
//
// Since the original trace is not redistributable, the package
// synthesizes traces with the properties those experiments actually use:
// a known link capacity, realistic burstiness, and long-range dependence,
// with the avail-bw process A_τ(t) computable exactly at any timescale.
// Two generators are provided: an aggregate of Pareto ON-OFF sources
// (Taqqu's construction, the standard model for self-similar Internet
// traffic) and a fractional-Gaussian-noise rate-modulated Poisson stream
// with an exactly controllable Hurst parameter.
package trace

import (
	"fmt"
	"sort"
	"time"

	"abw/internal/rng"
	"abw/internal/unit"
)

// Pkt is one packet arrival in a trace.
type Pkt struct {
	At   time.Duration
	Size unit.Bytes
}

// Trace is a timestamped packet arrival record on a link of known
// capacity — everything needed to compute the paper's Equations (1)–(3)
// in fluid (arrival-rate) form at any averaging timescale.
type Trace struct {
	// Capacity is the link capacity the trace was captured on.
	Capacity unit.Rate
	// Span is the trace duration.
	Span time.Duration

	pkts []Pkt
	// cum[i] is the total bytes of pkts[0:i]; cum has len(pkts)+1
	// entries so window sums are two lookups.
	cum []unit.Bytes
}

// New builds a trace from packets (sorted by time if needed).
func New(capacity unit.Rate, span time.Duration, pkts []Pkt) (*Trace, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("trace: capacity %v must be positive", capacity)
	}
	if span <= 0 {
		return nil, fmt.Errorf("trace: span %v must be positive", span)
	}
	sorted := append([]Pkt(nil), pkts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	for i, p := range sorted {
		if p.At < 0 || p.At > span {
			return nil, fmt.Errorf("trace: packet %d at %v outside [0, %v]", i, p.At, span)
		}
		if p.Size <= 0 {
			return nil, fmt.Errorf("trace: packet %d has size %d", i, p.Size)
		}
	}
	cum := make([]unit.Bytes, len(sorted)+1)
	for i, p := range sorted {
		cum[i+1] = cum[i] + p.Size
	}
	return &Trace{Capacity: capacity, Span: span, pkts: sorted, cum: cum}, nil
}

// Len returns the packet count.
func (t *Trace) Len() int { return len(t.pkts) }

// Packets returns the packet slice (shared; treat as read-only).
func (t *Trace) Packets() []Pkt { return t.pkts }

// BytesIn returns the traffic volume arriving in [from, from+win).
func (t *Trace) BytesIn(from, win time.Duration) unit.Bytes {
	if win <= 0 {
		return 0
	}
	lo := sort.Search(len(t.pkts), func(i int) bool { return t.pkts[i].At >= from })
	hi := sort.Search(len(t.pkts), func(i int) bool { return t.pkts[i].At >= from+win })
	return t.cum[hi] - t.cum[lo]
}

// Rate returns the average arrival rate over [from, from+win).
func (t *Trace) Rate(from, win time.Duration) unit.Rate {
	return unit.RateOf(t.BytesIn(from, win), win)
}

// MeanRate returns the trace's overall average rate.
func (t *Trace) MeanRate() unit.Rate {
	return unit.RateOf(t.cum[len(t.cum)-1], t.Span)
}

// Utilization returns the trace's overall utilization of the link.
func (t *Trace) Utilization() float64 {
	return float64(t.MeanRate()) / float64(t.Capacity)
}

// AvailBw returns A(from, from+win) = C − arrival rate, clamped at 0
// when the instantaneous offered load exceeds capacity (a queueing
// window).
func (t *Trace) AvailBw(from, win time.Duration) unit.Rate {
	a := t.Capacity - t.Rate(from, win)
	if a < 0 {
		return 0
	}
	return a
}

// AvailBwSeries samples A_τ(t) on consecutive windows covering
// [from, to) — the sample path of the paper's Figure 6.
func (t *Trace) AvailBwSeries(from, to, tau time.Duration) []unit.Rate {
	if tau <= 0 {
		panic(fmt.Sprintf("trace: tau %v must be positive", tau))
	}
	var out []unit.Rate
	for at := from; at+tau <= to; at += tau {
		out = append(out, t.AvailBw(at, tau))
	}
	return out
}

// PoissonSample draws k samples of A_τ at Poisson-placed instants over
// the whole trace — the sampling discipline of the paper's Figure 1
// experiment. The mean sampling gap is (Span−τ)/k so the samples spread
// over the trace.
func (t *Trace) PoissonSample(tau time.Duration, k int, r *rng.Rand) ([]unit.Rate, error) {
	if tau <= 0 || tau >= t.Span {
		return nil, fmt.Errorf("trace: tau %v outside (0, span)", tau)
	}
	if k < 1 {
		return nil, fmt.Errorf("trace: need at least one sample")
	}
	if r == nil {
		return nil, fmt.Errorf("trace: PoissonSample needs a random source")
	}
	meanGap := (t.Span - tau).Seconds() / float64(k)
	out := make([]unit.Rate, 0, k)
	at := time.Duration(0)
	for len(out) < k {
		at += time.Duration(r.Exp(meanGap) * 1e9)
		// Wrap around so we always collect exactly k samples even when
		// the exponential gaps overshoot the trace end.
		for at+tau > t.Span {
			at -= t.Span - tau
		}
		out = append(out, t.AvailBw(at, tau))
	}
	return out, nil
}
