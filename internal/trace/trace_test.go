package trace

import (
	"math"
	"testing"
	"time"

	"abw/internal/rng"
	"abw/internal/unit"
)

func mkTrace(t *testing.T, capacity unit.Rate, span time.Duration, pkts []Pkt) *Trace {
	t.Helper()
	tr, err := New(capacity, span, pkts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, time.Second, nil); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(unit.Mbps, 0, nil); err == nil {
		t.Error("zero span accepted")
	}
	if _, err := New(unit.Mbps, time.Second, []Pkt{{At: 2 * time.Second, Size: 100}}); err == nil {
		t.Error("packet beyond span accepted")
	}
	if _, err := New(unit.Mbps, time.Second, []Pkt{{At: 0, Size: 0}}); err == nil {
		t.Error("zero-size packet accepted")
	}
}

func TestNewSortsPackets(t *testing.T) {
	tr := mkTrace(t, 10*unit.Mbps, time.Second, []Pkt{
		{At: 300 * time.Millisecond, Size: 100},
		{At: 100 * time.Millisecond, Size: 200},
		{At: 200 * time.Millisecond, Size: 300},
	})
	prev := time.Duration(-1)
	for _, p := range tr.Packets() {
		if p.At < prev {
			t.Fatal("packets not sorted")
		}
		prev = p.At
	}
}

func TestBytesInWindows(t *testing.T) {
	tr := mkTrace(t, 10*unit.Mbps, time.Second, []Pkt{
		{At: 100 * time.Millisecond, Size: 1000},
		{At: 200 * time.Millisecond, Size: 2000},
		{At: 300 * time.Millisecond, Size: 4000},
	})
	cases := []struct {
		from, win time.Duration
		want      unit.Bytes
	}{
		{0, time.Second, 7000},
		{0, 150 * time.Millisecond, 1000},
		{150 * time.Millisecond, 100 * time.Millisecond, 2000},
		{100 * time.Millisecond, 200 * time.Millisecond, 3000}, // [100, 300): includes 100, 200, excludes 300
		{400 * time.Millisecond, 100 * time.Millisecond, 0},
		{0, 0, 0},
	}
	for _, tc := range cases {
		if got := tr.BytesIn(tc.from, tc.win); got != tc.want {
			t.Errorf("BytesIn(%v, %v) = %d, want %d", tc.from, tc.win, got, tc.want)
		}
	}
}

func TestRateAndAvailBw(t *testing.T) {
	// 1250 bytes in 1 ms = 10 Mbps on a 50 Mbps link → A = 40 Mbps.
	tr := mkTrace(t, 50*unit.Mbps, 10*time.Millisecond, []Pkt{
		{At: 0, Size: 625},
		{At: 500 * time.Microsecond, Size: 625},
	})
	if got := tr.Rate(0, time.Millisecond); math.Abs(got.MbpsOf()-10) > 0.01 {
		t.Errorf("Rate = %v, want 10Mbps", got)
	}
	if got := tr.AvailBw(0, time.Millisecond); math.Abs(got.MbpsOf()-40) > 0.01 {
		t.Errorf("AvailBw = %v, want 40Mbps", got)
	}
	// Empty window: full capacity available.
	if got := tr.AvailBw(5*time.Millisecond, time.Millisecond); got != 50*unit.Mbps {
		t.Errorf("idle AvailBw = %v, want 50Mbps", got)
	}
}

func TestAvailBwClampedAtZero(t *testing.T) {
	// Burst above capacity within the window.
	tr := mkTrace(t, unit.Mbps, 10*time.Millisecond, []Pkt{
		{At: 0, Size: 10000},
	})
	if got := tr.AvailBw(0, time.Millisecond); got != 0 {
		t.Errorf("overloaded AvailBw = %v, want 0", got)
	}
}

func TestAvailBwSeriesCount(t *testing.T) {
	tr := mkTrace(t, 10*unit.Mbps, time.Second, []Pkt{{At: 0, Size: 100}})
	series := tr.AvailBwSeries(0, time.Second, 100*time.Millisecond)
	if len(series) != 10 {
		t.Errorf("series length = %d, want 10", len(series))
	}
}

func TestMeanRateAndUtilization(t *testing.T) {
	tr := mkTrace(t, 10*unit.Mbps, time.Second, []Pkt{
		{At: 0, Size: 125000},
		{At: 500 * time.Millisecond, Size: 125000},
	})
	// 250 kB in 1 s = 2 Mbps → utilization 0.2.
	if got := tr.MeanRate(); math.Abs(got.MbpsOf()-2) > 0.01 {
		t.Errorf("MeanRate = %v, want 2Mbps", got)
	}
	if got := tr.Utilization(); math.Abs(got-0.2) > 0.001 {
		t.Errorf("Utilization = %g, want 0.2", got)
	}
}

func TestPoissonSampleBasics(t *testing.T) {
	r := rng.New(1)
	tr, err := SynthesizeFGN(FGNConfig{Span: 10 * time.Second}, r)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := tr.PoissonSample(10*time.Millisecond, 20, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 20 {
		t.Fatalf("samples = %d, want 20", len(samples))
	}
	for _, s := range samples {
		if s < 0 || s > tr.Capacity {
			t.Fatalf("sample %v outside [0, C]", s)
		}
	}
}

func TestPoissonSampleErrors(t *testing.T) {
	tr := mkTrace(t, 10*unit.Mbps, time.Second, []Pkt{{At: 0, Size: 100}})
	if _, err := tr.PoissonSample(2*time.Second, 5, rng.New(1)); err == nil {
		t.Error("tau > span accepted")
	}
	if _, err := tr.PoissonSample(time.Millisecond, 0, rng.New(1)); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := tr.PoissonSample(time.Millisecond, 5, nil); err == nil {
		t.Error("nil rand accepted")
	}
}

func TestSynthesizeOnOffCalibration(t *testing.T) {
	r := rng.New(3)
	tr, err := SynthesizeOnOff(OnOffConfig{Span: 20 * time.Second}, r)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.MeanRate().MbpsOf()
	// Heavy-tailed sources converge slowly; accept ±30% around the
	// 70 Mbps target over 20 s.
	if got < 49 || got > 91 {
		t.Errorf("ON-OFF mean rate = %.1f Mbps, want 70±30%%", got)
	}
	if tr.Capacity != unit.OC3 {
		t.Errorf("capacity = %v, want OC-3", tr.Capacity)
	}
}

func TestSynthesizeOnOffLongRangeDependent(t *testing.T) {
	r := rng.New(4)
	tr, err := SynthesizeOnOff(OnOffConfig{Span: 30 * time.Second}, r)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tr.HurstEstimate(10 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.6 {
		t.Errorf("ON-OFF aggregate Hurst = %.2f, want > 0.6 (LRD)", h)
	}
}

func TestSynthesizeFGNCalibration(t *testing.T) {
	r := rng.New(5)
	tr, err := SynthesizeFGN(FGNConfig{Span: 20 * time.Second}, r)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.MeanRate().MbpsOf()
	if math.Abs(got-70)/70 > 0.1 {
		t.Errorf("fGn trace mean rate = %.1f Mbps, want ~70", got)
	}
	// Figure 6 calibration: the 10 ms avail-bw should roam a wide band
	// around 85 Mbps.
	series := tr.AvailBwSeries(0, 20*time.Second, 10*time.Millisecond)
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, a := range series {
		v := a.MbpsOf()
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 25 {
		t.Errorf("10ms avail-bw band = [%.0f, %.0f] Mbps, want a spread > 25", lo, hi)
	}
}

func TestSynthesizeFGNHurstControl(t *testing.T) {
	for _, h := range []float64{0.6, 0.85} {
		tr, err := SynthesizeFGN(FGNConfig{Span: 40 * time.Second, Hurst: h, RelStdDev: 0.15}, rng.New(6))
		if err != nil {
			t.Fatal(err)
		}
		got, err := tr.HurstEstimate(10 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-h) > 0.12 {
			t.Errorf("configured H=%.2f, estimated %.2f", h, got)
		}
	}
}

func TestSynthesizeValidation(t *testing.T) {
	if _, err := SynthesizeOnOff(OnOffConfig{MeanRate: 200 * unit.Mbps, Capacity: 100 * unit.Mbps}, rng.New(1)); err == nil {
		t.Error("mean above capacity accepted")
	}
	if _, err := SynthesizeOnOff(OnOffConfig{}, nil); err == nil {
		t.Error("nil rand accepted")
	}
	if _, err := SynthesizeFGN(FGNConfig{Hurst: 1.5}, rng.New(1)); err == nil {
		t.Error("invalid Hurst accepted")
	}
	if _, err := SynthesizeFGN(FGNConfig{}, nil); err == nil {
		t.Error("nil rand accepted")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, err := SynthesizeFGN(FGNConfig{Span: 5 * time.Second}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SynthesizeFGN(FGNConfig{Span: 5 * time.Second}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("replay differs: %d vs %d packets", a.Len(), b.Len())
	}
	for i := range a.Packets() {
		if a.Packets()[i] != b.Packets()[i] {
			t.Fatal("replay packet mismatch")
		}
	}
}

func TestRateSeries(t *testing.T) {
	tr := mkTrace(t, 10*unit.Mbps, time.Second, []Pkt{
		{At: 0, Size: 1250}, // 10 kbit in first 100ms window
	})
	series := tr.RateSeries(100 * time.Millisecond)
	if len(series) != 10 {
		t.Fatalf("series length = %d", len(series))
	}
	if math.Abs(series[0]-0.1) > 0.001 {
		t.Errorf("window 0 rate = %g Mbps, want 0.1", series[0])
	}
	for _, v := range series[1:] {
		if v != 0 {
			t.Errorf("idle window rate = %g, want 0", v)
		}
	}
}
