package trace

import (
	"fmt"
	"time"

	"abw/internal/fgn"
	"abw/internal/rng"
	"abw/internal/stats"
	"abw/internal/unit"
)

// OnOffConfig parameterizes the aggregated Pareto ON-OFF generator.
// Zero fields take defaults calibrated to resemble the paper's OC-3
// access-link trace.
type OnOffConfig struct {
	// Capacity is the link capacity (default unit.OC3).
	Capacity unit.Rate
	// MeanRate is the target aggregate traffic rate (default 70 Mbps,
	// putting the mean avail-bw near the 85 Mbps of Figure 6).
	MeanRate unit.Rate
	// Sources is the number of multiplexed ON-OFF sources (default 50).
	Sources int
	// Span is the trace duration (default 30 s).
	Span time.Duration
	// OnShape and OffShape are the Pareto shapes of ON and OFF periods
	// (defaults 1.5 and 1.5, the heavy-tailed regime that yields
	// self-similar aggregates with H = (3−min(shape))/2 ≈ 0.75).
	OnShape, OffShape float64
	// PeakFactor is each source's ON rate as a multiple of its mean
	// rate (default 5).
	PeakFactor float64
	// Sizes draws packet sizes (default the trimodal Internet mix).
	Sizes rng.SizeDist
}

func (c OnOffConfig) withDefaults() (OnOffConfig, error) {
	if c.Capacity == 0 {
		c.Capacity = unit.OC3
	}
	if c.MeanRate == 0 {
		c.MeanRate = 70 * unit.Mbps
	}
	if c.Capacity <= 0 || c.MeanRate <= 0 || c.MeanRate >= c.Capacity {
		return c, fmt.Errorf("trace: need 0 < MeanRate < Capacity (got %v, %v)", c.MeanRate, c.Capacity)
	}
	if c.Sources == 0 {
		c.Sources = 50
	}
	if c.Sources < 1 {
		return c, fmt.Errorf("trace: need at least one source")
	}
	if c.Span == 0 {
		c.Span = 30 * time.Second
	}
	if c.Span <= 0 {
		return c, fmt.Errorf("trace: span must be positive")
	}
	if c.OnShape == 0 {
		c.OnShape = 1.5
	}
	if c.OffShape == 0 {
		c.OffShape = 1.5
	}
	if c.OnShape <= 1 || c.OffShape <= 1 {
		return c, fmt.Errorf("trace: Pareto shapes must exceed 1 for finite means")
	}
	if c.PeakFactor == 0 {
		c.PeakFactor = 5
	}
	if c.PeakFactor <= 1 {
		return c, fmt.Errorf("trace: peak factor must exceed 1")
	}
	if c.Sizes == nil {
		c.Sizes = rng.InternetMix
	}
	return c, nil
}

// SynthesizeOnOff builds a trace as the superposition of heavy-tailed
// ON-OFF sources. The aggregate is asymptotically self-similar (Taqqu,
// Willinger & Sherman), reproducing the burstiness-across-timescales
// structure the Figure 1 experiment depends on.
func SynthesizeOnOff(cfg OnOffConfig, r *rng.Rand) (*Trace, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if r == nil {
		return nil, fmt.Errorf("trace: SynthesizeOnOff needs a random source")
	}
	perSource := c.MeanRate / unit.Rate(c.Sources)
	peak := perSource * unit.Rate(c.PeakFactor)
	// Mean ON duration chosen so a typical burst carries ~20 packets;
	// OFF calibrated for the duty cycle d = 1/PeakFactor.
	meanSize := c.Sizes.Mean()
	meanOn := 20 * meanSize * 8 / float64(peak)
	meanOff := meanOn * (c.PeakFactor - 1)
	onXm := meanOn * (c.OnShape - 1) / c.OnShape
	offXm := meanOff * (c.OffShape - 1) / c.OffShape
	var pkts []Pkt
	for s := 0; s < c.Sources; s++ {
		src := r.Split(fmt.Sprintf("src%d", s))
		// Random initial phase: start mid-cycle so sources are not
		// synchronized at t=0.
		at := -time.Duration(src.Exp(meanOn+meanOff) * 1e9)
		for at < c.Span {
			on := time.Duration(src.Pareto(c.OnShape, onXm) * 1e9)
			end := at + on
			t := at
			for t < end && t < c.Span {
				if t >= 0 {
					size := unit.Bytes(c.Sizes.Sample(src))
					pkts = append(pkts, Pkt{At: t, Size: size})
					t += unit.GapFor(size, peak)
				} else {
					t += unit.GapFor(unit.Bytes(meanSize), peak)
				}
			}
			off := time.Duration(src.Pareto(c.OffShape, offXm) * 1e9)
			at = end + off
		}
	}
	return New(c.Capacity, c.Span, pkts)
}

// FGNConfig parameterizes the fGn rate-modulated generator: packet
// arrivals are locally Poisson, with the window rate following a
// fractional Gaussian noise envelope of exactly known Hurst parameter.
type FGNConfig struct {
	// Capacity is the link capacity (default unit.OC3).
	Capacity unit.Rate
	// MeanRate is the target traffic rate (default 70 Mbps).
	MeanRate unit.Rate
	// RelStdDev is the standard deviation of the window rate relative
	// to MeanRate, at Window granularity (default 0.18 — chosen so the
	// 10 ms avail-bw roams roughly 60–110 Mbps as in Figure 6).
	RelStdDev float64
	// Hurst is the envelope's Hurst parameter (default 0.8).
	Hurst float64
	// Window is the modulation granularity (default 10 ms).
	Window time.Duration
	// Span is the trace duration (default 30 s).
	Span time.Duration
	// Sizes draws packet sizes (default the trimodal Internet mix).
	Sizes rng.SizeDist
}

func (c FGNConfig) withDefaults() (FGNConfig, error) {
	if c.Capacity == 0 {
		c.Capacity = unit.OC3
	}
	if c.MeanRate == 0 {
		c.MeanRate = 70 * unit.Mbps
	}
	if c.Capacity <= 0 || c.MeanRate <= 0 || c.MeanRate >= c.Capacity {
		return c, fmt.Errorf("trace: need 0 < MeanRate < Capacity (got %v, %v)", c.MeanRate, c.Capacity)
	}
	if c.RelStdDev == 0 {
		c.RelStdDev = 0.18
	}
	if c.RelStdDev < 0 || c.RelStdDev > 1 {
		return c, fmt.Errorf("trace: relative stddev %g outside [0, 1]", c.RelStdDev)
	}
	if c.Hurst == 0 {
		c.Hurst = 0.8
	}
	if c.Hurst <= 0 || c.Hurst >= 1 {
		return c, fmt.Errorf("trace: Hurst %g outside (0, 1)", c.Hurst)
	}
	if c.Window == 0 {
		c.Window = 10 * time.Millisecond
	}
	if c.Window <= 0 {
		return c, fmt.Errorf("trace: window must be positive")
	}
	if c.Span == 0 {
		c.Span = 30 * time.Second
	}
	if c.Span < 2*c.Window {
		return c, fmt.Errorf("trace: span %v too short for window %v", c.Span, c.Window)
	}
	if c.Sizes == nil {
		c.Sizes = rng.InternetMix
	}
	return c, nil
}

// SynthesizeFGN builds a trace whose windowed rate process is fGn with
// the configured Hurst parameter — the generator used when an experiment
// needs an exactly known correlation structure (e.g. validating the
// Equation (5) variance law on traffic rather than on raw fGn).
func SynthesizeFGN(cfg FGNConfig, r *rng.Rand) (*Trace, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if r == nil {
		return nil, fmt.Errorf("trace: SynthesizeFGN needs a random source")
	}
	n := int(c.Span / c.Window)
	gen, err := fgn.NewGenerator(c.Hurst, n)
	if err != nil {
		return nil, err
	}
	envelope, err := gen.Sample(r.Split("envelope"))
	if err != nil {
		return nil, err
	}
	arrivals := r.Split("arrivals")
	sigma := float64(c.MeanRate) * c.RelStdDev
	var pkts []Pkt
	for w := 0; w < n; w++ {
		rate := float64(c.MeanRate) + sigma*envelope[w]
		// Clamp to the physical range; clamping slightly reduces the
		// realized variance, which the calibration tests account for.
		if rate < 0 {
			rate = 0
		}
		if rate > float64(c.Capacity) {
			rate = float64(c.Capacity)
		}
		if rate == 0 {
			continue
		}
		winStart := time.Duration(w) * c.Window
		meanSize := c.Sizes.Mean()
		meanGap := meanSize * 8 / rate
		at := winStart + time.Duration(arrivals.Exp(meanGap)*1e9)
		for at < winStart+c.Window {
			size := unit.Bytes(c.Sizes.Sample(arrivals))
			pkts = append(pkts, Pkt{At: at, Size: size})
			at += time.Duration(arrivals.Exp(meanGap) * 1e9)
		}
	}
	if len(pkts) == 0 {
		return nil, fmt.Errorf("trace: synthesis produced no packets (rate too low?)")
	}
	return New(c.Capacity, c.Span, pkts)
}

// RateSeries returns the windowed arrival-rate series of the trace in
// Mbps, the raw material of variance–time analysis.
func (t *Trace) RateSeries(tau time.Duration) []float64 {
	var out []float64
	for at := time.Duration(0); at+tau <= t.Span; at += tau {
		out = append(out, t.Rate(at, tau).MbpsOf())
	}
	return out
}

// HurstEstimate estimates the trace's Hurst parameter from the
// variance–time plot of its rate series at the given base timescale.
func (t *Trace) HurstEstimate(tau time.Duration) (float64, error) {
	series := t.RateSeries(tau)
	if len(series) < 64 {
		return 0, fmt.Errorf("trace: too short for Hurst estimation (%d windows)", len(series))
	}
	maxK := len(series) / 8
	var ks []int
	for k := 1; k <= maxK; k *= 2 {
		ks = append(ks, k)
	}
	return stats.HurstVT(series, ks)
}
