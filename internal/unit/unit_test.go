package unit

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTxTimeKnownValues(t *testing.T) {
	tests := []struct {
		name string
		b    Bytes
		r    Rate
		want time.Duration
	}{
		{"1500B at 100Mbps", 1500, 100 * Mbps, 120 * time.Microsecond},
		{"1500B at 10Mbps", 1500, 10 * Mbps, 1200 * time.Microsecond},
		{"40B at 100Mbps", 40, 100 * Mbps, 3200 * time.Nanosecond},
		{"1B at 8bps", 1, 8, time.Second},
		{"1500B at OC3", 1500, OC3, time.Duration(math.Round(1500 * 8 / 155.52e6 * 1e9))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := TxTime(tt.b, tt.r); got != tt.want {
				t.Errorf("TxTime(%d, %v) = %v, want %v", tt.b, tt.r, got, tt.want)
			}
		})
	}
}

func TestTxTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TxTime with zero rate did not panic")
		}
	}()
	TxTime(100, 0)
}

func TestRateOf(t *testing.T) {
	if got := RateOf(1500, 120*time.Microsecond); math.Abs(float64(got-100*Mbps)) > 1 {
		t.Errorf("RateOf(1500B, 120us) = %v, want 100Mbps", got)
	}
	if got := RateOf(1500, 0); got != 0 {
		t.Errorf("RateOf with zero duration = %v, want 0", got)
	}
	if got := RateOf(1500, -time.Second); got != 0 {
		t.Errorf("RateOf with negative duration = %v, want 0", got)
	}
}

func TestBytesIn(t *testing.T) {
	if got := BytesIn(100*Mbps, time.Second); got != 12500000 {
		t.Errorf("BytesIn(100Mbps, 1s) = %d, want 12500000", got)
	}
	if got := BytesIn(0, time.Second); got != 0 {
		t.Errorf("BytesIn(0, 1s) = %d, want 0", got)
	}
	if got := BytesIn(100*Mbps, -time.Second); got != 0 {
		t.Errorf("BytesIn with negative duration = %d, want 0", got)
	}
}

func TestGapForMatchesPaperDelta(t *testing.T) {
	// δ_i = L/R_i: 1500-byte packets at 40 Mbps → 300 µs.
	if got := GapFor(1500, 40*Mbps); got != 300*time.Microsecond {
		t.Errorf("GapFor(1500, 40Mbps) = %v, want 300µs", got)
	}
}

func TestRateRoundTripProperty(t *testing.T) {
	// For any positive byte count and rate, RateOf(b, TxTime(b, r)) ≈ r.
	f := func(bRaw uint16, rRaw uint32) bool {
		b := Bytes(bRaw%9000 + 40)
		r := Rate(float64(rRaw%1000+1)) * Mbps
		got := RateOf(b, TxTime(b, r))
		rel := math.Abs(float64(got-r)) / float64(r)
		return rel < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRateString(t *testing.T) {
	tests := []struct {
		r    Rate
		want string
	}{
		{0, "0bps"},
		{100 * Mbps, "100Mbps"},
		{1.5 * Gbps, "1.5Gbps"},
		{64 * Kbps, "64Kbps"},
		{500, "500bps"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("Rate(%g).String() = %q, want %q", float64(tt.r), got, tt.want)
		}
	}
}

func TestRateIsValid(t *testing.T) {
	if !Rate(10 * Mbps).IsValid() {
		t.Error("10Mbps should be valid")
	}
	if Rate(-1).IsValid() {
		t.Error("negative rate should be invalid")
	}
	if Rate(math.Inf(1)).IsValid() {
		t.Error("+Inf rate should be invalid")
	}
	if Rate(math.NaN()).IsValid() {
		t.Error("NaN rate should be invalid")
	}
}

func TestBytesBits(t *testing.T) {
	if got := Bytes(1500).Bits(); got != 12000 {
		t.Errorf("Bytes(1500).Bits() = %d, want 12000", got)
	}
}
