// Package unit defines the physical quantities shared by every other
// package in this module: transmission rates in bits per second, packet
// sizes in bytes, and helpers for converting between them and virtual
// time. Keeping these in one tiny package avoids unit mistakes (bits vs
// bytes, Mbps vs MBps) that would silently corrupt every experiment.
package unit

import (
	"fmt"
	"math"
	"time"
)

// Rate is a data rate in bits per second. The zero value means "no rate"
// and is reported as such by String.
type Rate float64

// Convenient rate constructors.
const (
	BitPerSecond Rate = 1
	Kbps              = 1e3 * BitPerSecond
	Mbps              = 1e6 * BitPerSecond
	Gbps              = 1e9 * BitPerSecond
)

// Well-known link capacities used across the paper's experiments.
const (
	// OC3 is the capacity of an OC-3 link, as in the NLANR/ANL access
	// link the paper's Figures 1 and 6 are derived from.
	OC3 = 155.52 * Mbps
	// OC12 is the capacity of an OC-12 link.
	OC12 = 622.08 * Mbps
	// FastEthernet is 100 Mbps, the "narrow link" in the tight-vs-narrow
	// pitfall.
	FastEthernet = 100 * Mbps
)

// MbpsOf returns the rate expressed in Mbps as a plain float64, which is
// how the paper reports every rate.
func (r Rate) MbpsOf() float64 { return float64(r) / 1e6 }

// IsValid reports whether the rate is a finite, non-negative number.
func (r Rate) IsValid() bool {
	f := float64(r)
	return f >= 0 && !math.IsInf(f, 0) && !math.IsNaN(f)
}

// String formats the rate with an adaptive unit.
func (r Rate) String() string {
	switch f := float64(r); {
	case f == 0:
		return "0bps"
	case f >= 1e9:
		return fmt.Sprintf("%.3gGbps", f/1e9)
	case f >= 1e6:
		return fmt.Sprintf("%.4gMbps", f/1e6)
	case f >= 1e3:
		return fmt.Sprintf("%.4gKbps", f/1e3)
	default:
		return fmt.Sprintf("%.4gbps", f)
	}
}

// Bytes is a data volume in bytes.
type Bytes int64

// Bits returns the volume in bits.
func (b Bytes) Bits() int64 { return int64(b) * 8 }

// TxTime returns the time needed to transmit b bytes at rate r, rounded
// to the nearest nanosecond. It panics on a non-positive rate because a
// zero-capacity link cannot transmit and such a call is always a
// programming error in the simulator.
func TxTime(b Bytes, r Rate) time.Duration {
	if r <= 0 {
		panic(fmt.Sprintf("unit: TxTime with non-positive rate %v", r))
	}
	sec := float64(b.Bits()) / float64(r)
	return time.Duration(math.Round(sec * 1e9))
}

// RateOf returns the average rate corresponding to b bytes transferred in
// d. A non-positive duration yields 0, so callers can fold degenerate
// measurement windows without special cases.
func RateOf(b Bytes, d time.Duration) Rate {
	if d <= 0 {
		return 0
	}
	return Rate(float64(b.Bits()) / d.Seconds())
}

// BytesIn returns the number of whole bytes a rate r delivers in d.
func BytesIn(r Rate, d time.Duration) Bytes {
	if r <= 0 || d <= 0 {
		return 0
	}
	return Bytes(float64(r) * d.Seconds() / 8)
}

// GapFor returns the inter-packet gap that makes a stream of size-b
// packets average rate r: gap = 8b/r. This is the paper's δ_i = L/R_i.
func GapFor(b Bytes, r Rate) time.Duration {
	return TxTime(b, r)
}
