// Command abwsim regenerates the paper's tables and figures on the
// discrete-event simulator.
//
// Usage:
//
//	abwsim -exp fig1           # one experiment
//	abwsim -exp all            # every table and figure
//	abwsim -list               # catalog of experiments and misconceptions
//	abwsim -exp fig3 -quick    # reduced trial counts for a fast pass
//	abwsim -exp fig7 -seed 7   # change the random seed
//
// Output is a text table per experiment, in the same rows/series the
// paper reports, with the paper's qualitative claim attached as a note.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"abw/internal/core"
	"abw/internal/exp"
	"abw/internal/unit"
)

func main() {
	var (
		which = flag.String("exp", "", "experiment: fig1..fig7, table1, latency, narrowtight, all")
		list  = flag.Bool("list", false, "list experiments and the misconception catalog")
		quick = flag.Bool("quick", false, "reduced trial counts (~10x faster)")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if *list {
		printCatalog()
		return
	}
	if *which == "" {
		fmt.Fprintln(os.Stderr, "abwsim: pick an experiment with -exp (or -list); see -h")
		os.Exit(2)
	}
	names := []string{*which}
	if *which == "all" {
		names = []string{"fig1", "fig2", "table1", "fig3", "fig4", "fig5", "fig6", "fig7", "latency", "narrowtight", "vartime", "compare"}
	}
	for _, name := range names {
		start := time.Now()
		tab, err := run(name, *quick, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abwsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		tab.Render(os.Stdout)
		fmt.Printf("  (%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func run(name string, quick bool, seed uint64) (*exp.Table, error) {
	switch name {
	case "fig1":
		cfg := exp.Figure1Config{Seed: seed}
		if quick {
			cfg.Trials = 120
			cfg.TraceSpan = 10 * time.Second
		}
		r, err := exp.Figure1(cfg)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case "fig2":
		cfg := exp.Figure2Config{Seed: seed}
		if quick {
			cfg.Streams = 40
		}
		r, err := exp.Figure2(cfg)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case "table1":
		cfg := exp.Table1Config{Seed: seed}
		if quick {
			cfg.Trials = 8
		}
		r, err := exp.Table1(cfg)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case "fig3":
		cfg := exp.Figure3Config{Seed: seed}
		if quick {
			cfg.Streams = 80
		}
		r, err := exp.Figure3(cfg)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case "fig4":
		cfg := exp.Figure4Config{Seed: seed}
		if quick {
			cfg.Streams = 60
		}
		r, err := exp.Figure4(cfg)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case "fig5":
		r, err := exp.Figure5(exp.Figure5Config{Seed: seed})
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case "fig6":
		r, err := exp.Figure6(exp.Figure6Config{Seed: seed})
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case "fig7":
		cfg := exp.Figure7Config{Seed: seed}
		if quick {
			cfg.Windows = []int{2, 8, 32, 128, 512}
			cfg.Duration = 12 * time.Second
		}
		r, err := exp.Figure7(cfg)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case "latency":
		cfg := exp.LatencyAccuracyConfig{Seed: seed}
		if quick {
			cfg.Trials = 8
		}
		r, err := exp.LatencyAccuracy(cfg)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case "narrowtight":
		r, err := exp.NarrowVsTight(exp.NarrowVsTightConfig{Seed: seed})
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case "vartime":
		cfg := exp.VarTimeConfig{Seed: seed}
		if quick {
			cfg.TraceSpan = 15 * time.Second
		}
		r, err := exp.VarianceTimescale(cfg)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case "compare":
		r, err := exp.CompareTools(exp.CompareConfig{Seed: seed})
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	default:
		return nil, fmt.Errorf("unknown experiment %q", name)
	}
}

func printCatalog() {
	fmt.Println("Experiments (Jain & Dovrolis, IMC 2004):")
	rows := []struct{ name, what string }{
		{"fig1", "sampling variability of the avail-bw process (CDF of sample-mean error)"},
		{"fig2", "probing duration = averaging timescale (population vs sample stddev)"},
		{"table1", "cross-traffic packet size vs packet-pair error"},
		{"fig3", "cross-traffic burstiness vs Ro/Ri response"},
		{"fig4", "multiple tight links vs Ro/Ri response"},
		{"fig5", "OWD trend analysis vs the Ro/Ri ratio"},
		{"fig6", "variation range of an avail-bw sample path"},
		{"fig7", "bulk TCP throughput vs avail-bw under three cross-traffic types"},
		{"latency", "the latency/accuracy tradeoff behind 'faster is better'"},
		{"narrowtight", "narrow-link capacity misused as tight-link capacity"},
		{"vartime", "Eq. (4)/(5): variance decay of A_tau across timescales"},
		{"compare", "all seven tools on one path with cost columns"},
	}
	for _, r := range rows {
		fmt.Printf("  %-12s %s\n", r.name, r.what)
	}
	fmt.Println("\nThe ten misconceptions:")
	for _, m := range core.Misconceptions {
		fmt.Printf("  %2d. [%s] %s (exp: %s)\n", m.ID, m.Kind, m.Title, m.Experiment)
	}
	_ = unit.Mbps
}
