// Command abwsim regenerates the paper's tables and figures on the
// discrete-event simulator.
//
// Usage:
//
//	abwsim -exp fig1           # one experiment
//	abwsim -exp all            # every table and figure
//	abwsim -list               # catalog of experiments and misconceptions
//	abwsim -exp fig3 -quick    # reduced trial counts for a fast pass
//	abwsim -exp fig7 -seed 7   # change the random seed
//	abwsim -exp all -parallel 8            # cap the trial-engine workers
//	abwsim -exp all -json out              # one structured JSON result per experiment
//	abwsim -exp all -json out -md EXPERIMENTS.md   # regenerate the results doc
//	abwsim -only fig3 -json results -md EXPERIMENTS.md
//	    # fast iteration: rerun ONE experiment, regenerate the whole doc
//	    # by merging the other experiments' stored -json results
//
// Output is a text table per experiment, in the same rows/series the
// paper reports, with the paper's qualitative claim attached as a note.
// Experiments run their trials on the internal/runner worker pool; the
// results are bit-identical for every -parallel value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"abw/internal/core"
	"abw/internal/exp"
	"abw/internal/runner"
	"abw/internal/scenario"
	"abw/internal/unit"
)

func main() {
	var (
		which      = flag.String("exp", "", "experiment: fig1..fig7, table1, latency, narrowtight, matrix, dataset, learnedeval, all")
		only       = flag.String("only", "", "run only this comma-separated subset; with -md, the rest load from the -json dir (see -list for names)")
		list       = flag.Bool("list", false, "list experiments and the misconception catalog")
		quick      = flag.Bool("quick", false, "reduced trial counts (~10x faster)")
		seed       = flag.Uint64("seed", 1, "random seed")
		parallel   = flag.Int("parallel", 0, "trial-engine workers (0 = one per CPU)")
		progress   = flag.Bool("progress", false, "print per-trial progress to stderr")
		jsonDir    = flag.String("json", "", "directory for one structured JSON result per experiment")
		csvPath    = flag.String("csv", "", "with -exp dataset: write the generated rows as CSV here")
		mdPath     = flag.String("md", "", "write the paper-vs-measured markdown doc (EXPERIMENTS.md) here")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (after all experiments) to this file")
	)
	flag.Parse()
	runner.SetWorkers(*parallel)
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abwsim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "abwsim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "abwsim: -memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // flush unreachable pool garbage so live arenas dominate
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "abwsim: -memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}
	if *progress {
		runner.SetProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r  %d/%d trials", done, total)
			if done == total {
				fmt.Fprint(os.Stderr, "\r\033[K")
			}
		})
	}
	if *list {
		printCatalog()
		return
	}
	if *which == "" && *only == "" {
		fmt.Fprintln(os.Stderr, "abwsim: pick an experiment with -exp or -only (or -list); see -h")
		os.Exit(2)
	}
	if *which != "" && *only != "" {
		fmt.Fprintln(os.Stderr, "abwsim: -exp and -only are mutually exclusive")
		os.Exit(2)
	}
	names := []string{*which}
	if *which == "all" {
		names = allExperiments()
	}
	if *only != "" {
		names = strings.Split(*only, ",")
		for _, n := range names {
			if describe(n) == "" {
				fmt.Fprintf(os.Stderr, "abwsim: -only: unknown experiment %q (see -list)\n", n)
				os.Exit(2)
			}
		}
	}
	var results []*runner.Result
	for _, name := range names {
		start := time.Now()
		payload, tab, err := run(name, *quick, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abwsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		tab.Render(os.Stdout)
		fmt.Printf("  (%s in %v)\n\n", name, elapsed.Round(time.Millisecond))
		res := &runner.Result{
			Name:      name,
			Seed:      *seed,
			Quick:     *quick,
			Workers:   runner.Workers(),
			ElapsedMS: float64(elapsed.Microseconds()) / 1000,
			Payload:   payload,
			Table:     tab,
		}
		results = append(results, res)
		if ds, ok := payload.(*exp.DatasetResult); ok && *csvPath != "" {
			if err := writeDatasetCSV(*csvPath, ds); err != nil {
				fmt.Fprintf(os.Stderr, "abwsim: -csv: %v\n", err)
				os.Exit(1)
			}
		}
		if *jsonDir != "" {
			if _, err := res.WriteJSON(*jsonDir); err != nil {
				fmt.Fprintf(os.Stderr, "abwsim: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
	}
	if *mdPath != "" {
		if *only != "" {
			merged, err := mergeStored(results, *jsonDir, *quick, *seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "abwsim: %v\n", err)
				os.Exit(1)
			}
			results = merged
		}
		if err := writeMarkdown(*mdPath, results, *quick, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "abwsim: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeDatasetCSV dumps the dataset experiment's rows — the training
// input of scripts/trainlearned — in its deterministic CSV form.
func writeDatasetCSV(path string, ds *exp.DatasetResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ds.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// mergeStored fills the catalog-ordered result list for -md when only
// a subset was rerun: experiments not in this run load from their
// stored -json results, refusing stale files (different seed or quick
// setting) — the guarantee that a merged EXPERIMENTS.md is exactly
// what a full run would produce.
func mergeStored(ran []*runner.Result, jsonDir string, quick bool, seed uint64) ([]*runner.Result, error) {
	if jsonDir == "" {
		return nil, fmt.Errorf("-only with -md needs -json <dir> holding the other experiments' stored results")
	}
	byName := make(map[string]*runner.Result, len(ran))
	for _, r := range ran {
		byName[r.Name] = r
	}
	full := make([]*runner.Result, 0, len(catalog))
	for _, c := range catalog {
		if r, ok := byName[c.name]; ok {
			full = append(full, r)
			continue
		}
		r, err := loadStored(jsonDir, c.name, quick, seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %v (rerun it, or drop -only)", c.name, err)
		}
		full = append(full, r)
	}
	return full, nil
}

// loadStored reads one experiment's stored JSON result and verifies it
// matches this run's seed and quick setting.
func loadStored(dir, name string, quick bool, seed uint64) (*runner.Result, error) {
	b, err := os.ReadFile(filepath.Join(dir, name+".json"))
	if err != nil {
		return nil, err
	}
	var st struct {
		Name  string     `json:"name"`
		Seed  uint64     `json:"seed"`
		Quick bool       `json:"quick"`
		Table *exp.Table `json:"table"`
	}
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, fmt.Errorf("stored result: %w", err)
	}
	if st.Seed != seed || st.Quick != quick {
		return nil, fmt.Errorf("stored result is stale: seed %d quick %v, this run wants seed %d quick %v",
			st.Seed, st.Quick, seed, quick)
	}
	if st.Table == nil {
		return nil, fmt.Errorf("stored result has no table")
	}
	return &runner.Result{Name: st.Name, Seed: st.Seed, Quick: st.Quick, Table: st.Table}, nil
}

// tabler is the piece of every experiment result the CLI renders.
type tabler interface{ Table() *exp.Table }

// experiment is one catalog entry: the single list driving -list,
// "-exp all" ordering, the generated doc's descriptions, and dispatch —
// adding an experiment means adding exactly one entry here.
type experiment struct {
	name, what string
	run        func(quick bool, seed uint64) (tabler, error)
}

var catalog = []experiment{
	{"fig1", "sampling variability of the avail-bw process (CDF of sample-mean error)",
		func(quick bool, seed uint64) (tabler, error) {
			cfg := exp.Figure1Config{Seed: seed}
			if quick {
				cfg.Trials = 120
				cfg.TraceSpan = 10 * time.Second
			}
			return exp.Figure1(cfg)
		}},
	{"fig2", "probing duration = averaging timescale (population vs sample stddev)",
		func(quick bool, seed uint64) (tabler, error) {
			cfg := exp.Figure2Config{Seed: seed}
			if quick {
				cfg.Streams = 40
			}
			return exp.Figure2(cfg)
		}},
	{"table1", "cross-traffic packet size vs packet-pair error",
		func(quick bool, seed uint64) (tabler, error) {
			cfg := exp.Table1Config{Seed: seed}
			if quick {
				cfg.Trials = 8
			}
			return exp.Table1(cfg)
		}},
	{"fig3", "cross-traffic burstiness vs Ro/Ri response",
		func(quick bool, seed uint64) (tabler, error) {
			cfg := exp.Figure3Config{Seed: seed}
			if quick {
				cfg.Streams = 80
			}
			return exp.Figure3(cfg)
		}},
	{"fig4", "multiple tight links vs Ro/Ri response",
		func(quick bool, seed uint64) (tabler, error) {
			cfg := exp.Figure4Config{Seed: seed}
			if quick {
				cfg.Streams = 60
			}
			return exp.Figure4(cfg)
		}},
	{"fig5", "OWD trend analysis vs the Ro/Ri ratio",
		func(_ bool, seed uint64) (tabler, error) {
			return exp.Figure5(exp.Figure5Config{Seed: seed})
		}},
	{"fig6", "variation range of an avail-bw sample path",
		func(_ bool, seed uint64) (tabler, error) {
			return exp.Figure6(exp.Figure6Config{Seed: seed})
		}},
	{"fig7", "bulk TCP throughput vs avail-bw under three cross-traffic types",
		func(quick bool, seed uint64) (tabler, error) {
			cfg := exp.Figure7Config{Seed: seed}
			if quick {
				cfg.Windows = []int{2, 8, 32, 128, 512}
				cfg.Duration = 12 * time.Second
			}
			return exp.Figure7(cfg)
		}},
	{"latency", "the latency/accuracy tradeoff behind 'faster is better'",
		func(quick bool, seed uint64) (tabler, error) {
			cfg := exp.LatencyAccuracyConfig{Seed: seed}
			if quick {
				cfg.Trials = 8
			}
			return exp.LatencyAccuracy(cfg)
		}},
	{"narrowtight", "narrow-link capacity misused as tight-link capacity",
		func(_ bool, seed uint64) (tabler, error) {
			return exp.NarrowVsTight(exp.NarrowVsTightConfig{Seed: seed})
		}},
	{"vartime", "Eq. (4)/(5): variance decay of A_tau across timescales",
		func(quick bool, seed uint64) (tabler, error) {
			cfg := exp.VarTimeConfig{Seed: seed}
			if quick {
				cfg.TraceSpan = 15 * time.Second
			}
			return exp.VarianceTimescale(cfg)
		}},
	{"compare", "all seven tools on one path with cost columns",
		func(_ bool, seed uint64) (tabler, error) {
			return exp.CompareTools(exp.CompareConfig{Seed: seed})
		}},
	{"matrix", "every registered tool against every cataloged scenario",
		func(quick bool, seed uint64) (tabler, error) {
			return exp.Matrix(exp.MatrixConfig{Quick: quick, Seed: seed})
		}},
	{"dataset", "probe-feature rows swept over catalog × cross-traffic scalings × seeds",
		func(quick bool, seed uint64) (tabler, error) {
			cfg := exp.DatasetConfig{Seed: seed}
			if quick {
				cfg.Scalings = []float64{1.0}
				cfg.Trials = 1
			}
			return exp.Dataset(cfg)
		}},
	{"learnedeval", "learned estimator vs best classical tool on held-out configurations",
		func(quick bool, seed uint64) (tabler, error) {
			cfg := exp.LearnedEvalConfig{Quick: quick, Seed: seed}
			if quick {
				cfg.Dataset = exp.DatasetConfig{Scalings: []float64{1.0}, Trials: 2}
			}
			return exp.LearnedEval(cfg)
		}},
}

func allExperiments() []string {
	names := make([]string, len(catalog))
	for i, c := range catalog {
		names[i] = c.name
	}
	return names
}

func describe(name string) string {
	for _, c := range catalog {
		if c.name == name {
			return c.what
		}
	}
	return ""
}

func run(name string, quick bool, seed uint64) (any, *exp.Table, error) {
	for _, e := range catalog {
		if e.name == name {
			r, err := e.run(quick, seed)
			if err != nil {
				return nil, nil, err
			}
			return r, r.Table(), nil
		}
	}
	return nil, nil, fmt.Errorf("unknown experiment %q", name)
}

// writeMarkdown renders the run's structured results as the
// paper-vs-measured document. EXPERIMENTS.md in the repository root is
// this function's output, never hand-edited.
func writeMarkdown(path string, results []*runner.Result, quick bool, seed uint64) error {
	var b strings.Builder
	b.WriteString("# EXPERIMENTS — paper vs measured\n\n")
	b.WriteString("Reproduction of the tables and figures of Jain & Dovrolis,\n")
	b.WriteString("*Ten Fallacies and Pitfalls on End-to-End Available Bandwidth\nEstimation* (IMC 2004).\n\n")
	b.WriteString("**This file is generated.** Regenerate it (and the structured JSON\nit is rendered from) with:\n\n")
	b.WriteString("```sh\ngo run ./cmd/abwsim -exp all")
	if quick {
		b.WriteString(" -quick")
	}
	if seed != 1 {
		fmt.Fprintf(&b, " -seed %d", seed)
	}
	b.WriteString(" -json results -md EXPERIMENTS.md\n```\n\n")
	fmt.Fprintf(&b, "Run parameters: seed %d, quick=%v. Trials execute on the\n", seed, quick)
	b.WriteString("internal/runner worker pool; the numbers are identical for every\n`-parallel` value (see DESIGN.md for the determinism contract).\n\n")

	// No timings here: the document must be byte-identical across
	// machines for a given seed, so a regeneration diff means the
	// science moved. Wall-clock lives in the -json results.
	b.WriteString("## Summary\n\n")
	b.WriteString("| experiment | reproduces | paper's reported behavior |\n")
	b.WriteString("| --- | --- | --- |\n")
	for _, r := range results {
		tab, _ := r.Table.(*exp.Table)
		claim := ""
		if tab != nil {
			claim = tab.PaperClaim()
		}
		fmt.Fprintf(&b, "| %s | %s | %s |\n",
			r.Name, describe(r.Name), strings.ReplaceAll(claim, "|", `\|`))
	}
	b.WriteString("\n## Measured results\n\n")
	b.WriteString("Each table below is the measured reproduction; the quoted notes\ncarry the paper's reported values for the same quantity.\n\n")
	for _, r := range results {
		if tab, ok := r.Table.(*exp.Table); ok {
			tab.Markdown(&b)
		}
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func printCatalog() {
	fmt.Println("Experiments (Jain & Dovrolis, IMC 2004):")
	for _, r := range catalog {
		fmt.Printf("  %-12s %s\n", r.name, r.what)
	}
	fmt.Println("\nScenario catalog (the conditions of the matrix experiment):")
	for _, d := range scenario.Catalog() {
		fmt.Printf("  %-16s %s\n", d.Name, d.Summary)
	}
	fmt.Println("\nThe ten misconceptions:")
	for _, m := range core.Misconceptions {
		fmt.Printf("  %2d. [%s] %s (exp: %s)\n", m.ID, m.Kind, m.Title, m.Experiment)
	}
	_ = unit.Mbps
}
