// Command abwtrace synthesizes and analyzes the packet traces standing in
// for the paper's NLANR/OC-3 trace: it prints avail-bw statistics across
// timescales, the variance–time relation, and the Hurst estimate.
//
// Usage:
//
//	abwtrace -gen fgn -span 30s             # fGn-modulated trace (default)
//	abwtrace -gen onoff -sources 80         # aggregated Pareto ON-OFF
//	abwtrace -tau 10ms -samplepath          # print the Figure-6 sample path
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"abw/internal/rng"
	"abw/internal/stats"
	"abw/internal/trace"
	"abw/internal/unit"
)

func main() {
	var (
		gen        = flag.String("gen", "fgn", "generator: fgn or onoff")
		span       = flag.Duration("span", 30*time.Second, "trace duration")
		meanMbps   = flag.Float64("mean", 70, "mean traffic rate (Mbps)")
		hurst      = flag.Float64("hurst", 0.8, "Hurst parameter (fgn generator)")
		sources    = flag.Int("sources", 50, "source count (onoff generator)")
		tau        = flag.Duration("tau", 10*time.Millisecond, "base averaging timescale")
		samplePath = flag.Bool("samplepath", false, "print the avail-bw sample path values")
		seed       = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	r := rng.New(*seed)
	var (
		tr  *trace.Trace
		err error
	)
	switch *gen {
	case "fgn":
		tr, err = trace.SynthesizeFGN(trace.FGNConfig{
			Span:     *span,
			MeanRate: unit.Rate(*meanMbps * 1e6),
			Hurst:    *hurst,
		}, r)
	case "onoff":
		tr, err = trace.SynthesizeOnOff(trace.OnOffConfig{
			Span:     *span,
			MeanRate: unit.Rate(*meanMbps * 1e6),
			Sources:  *sources,
		}, r)
	default:
		err = fmt.Errorf("unknown generator %q", *gen)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "abwtrace: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("trace: %d packets over %v on a %v link\n", tr.Len(), tr.Span, tr.Capacity)
	fmt.Printf("mean rate %.2f Mbps, utilization %.1f%%, mean avail-bw %.2f Mbps\n",
		tr.MeanRate().MbpsOf(), 100*tr.Utilization(), (tr.Capacity - tr.MeanRate()).MbpsOf())

	fmt.Println("\navail-bw distribution by timescale:")
	fmt.Printf("  %-8s %-8s %-8s %-8s %-8s %-8s\n", "tau", "mean", "stddev", "q05", "q95", "min")
	for _, t := range []time.Duration{*tau, 10 * *tau, 100 * *tau} {
		if t >= tr.Span {
			continue
		}
		series := tr.AvailBwSeries(0, tr.Span, t)
		vals := make([]float64, len(series))
		for i, a := range series {
			vals[i] = a.MbpsOf()
		}
		cdf := stats.NewCDF(vals)
		min, _ := stats.MinMax(vals)
		fmt.Printf("  %-8v %-8.2f %-8.2f %-8.2f %-8.2f %-8.2f\n",
			t, stats.Mean(vals), stats.StdDev(vals), cdf.Quantile(0.05), cdf.Quantile(0.95), min)
	}

	if h, err := tr.HurstEstimate(*tau); err == nil {
		fmt.Printf("\nHurst estimate (variance-time at %v): %.3f\n", *tau, h)
	}

	rateSeries := tr.RateSeries(*tau)
	fmt.Println("\nvariance-time relation of the rate series:")
	for k := 1; k <= len(rateSeries)/8; k *= 4 {
		fmt.Printf("  k=%-5d Var[X^(k)] = %.4f\n", k, stats.Variance(stats.Aggregate(rateSeries, k)))
	}

	abwSeries := tr.AvailBwSeries(0, tr.Span, *tau)
	vals := make([]float64, len(abwSeries))
	for i, a := range abwSeries {
		vals[i] = a.MbpsOf()
	}
	if hist, err := stats.NewHistogram(0, tr.Capacity.MbpsOf(), 16); err == nil {
		hist.AddAll(vals)
		fmt.Printf("\navail-bw distribution at tau=%v (Mbps):\n%s", *tau, hist.Render(48))
	}

	if *samplePath {
		fmt.Printf("\navail-bw sample path at tau=%v (Mbps):\n", *tau)
		for i, v := range vals {
			fmt.Printf("%.3f %.2f\n", float64(i)*tau.Seconds(), v)
		}
	}
}
