// Command abwprobe runs avail-bw estimation over real UDP sockets: a
// receiver on one end of the path, a sender with a choice of estimation
// technique on the other.
//
// Receiver:
//
//	abwprobe -mode recv -listen 0.0.0.0:9876
//
// Sender (pathload over the live path):
//
//	abwprobe -mode send -to host:9876 -tool pathload -min 1 -max 900
//
// Tools: pathload, pathchirp, topp, ptr (no capacity needed);
// delphi, spruce, igi (require -capacity, the tight-link capacity in
// Mbps — mind the paper's pitfall about measuring it with capacity
// tools, which report the narrow link).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"abw/internal/core"
	"abw/internal/livenet"
	"abw/internal/rng"
	"abw/internal/tools/delphi"
	"abw/internal/tools/igi"
	"abw/internal/tools/pathchirp"
	"abw/internal/tools/pathload"
	"abw/internal/tools/spruce"
	"abw/internal/tools/topp"
	"abw/internal/unit"
)

func main() {
	var (
		mode    = flag.String("mode", "", "recv or send")
		listen  = flag.String("listen", "0.0.0.0:9876", "receiver control address")
		to      = flag.String("to", "", "receiver address to probe toward")
		tool    = flag.String("tool", "pathload", "estimation technique")
		minMbps = flag.Float64("min", 1, "minimum probing rate (Mbps)")
		maxMbps = flag.Float64("max", 500, "maximum probing rate (Mbps)")
		capMbps = flag.Float64("capacity", 0, "tight-link capacity (Mbps), for direct-probing tools")
		seed    = flag.Uint64("seed", uint64(time.Now().UnixNano()), "random seed")
	)
	flag.Parse()
	switch *mode {
	case "recv":
		recv(*listen)
	case "send":
		if *to == "" {
			fatal("send mode needs -to host:port")
		}
		send(*to, *tool, *minMbps, *maxMbps, *capMbps, *seed)
	default:
		fatal("pick -mode recv or -mode send")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "abwprobe: "+format+"\n", args...)
	os.Exit(1)
}

func recv(listen string) {
	r, err := livenet.ListenReceiver(listen)
	if err != nil {
		fatal("%v", err)
	}
	defer r.Close()
	fmt.Printf("abwprobe: receiving on %s (ctrl+c to stop)\n", r.Addr())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}

func send(to, tool string, minMbps, maxMbps, capMbps float64, seed uint64) {
	tr, err := livenet.Dial(to)
	if err != nil {
		fatal("%v", err)
	}
	defer tr.Close()
	min := unit.Rate(minMbps * 1e6)
	max := unit.Rate(maxMbps * 1e6)
	capacity := unit.Rate(capMbps * 1e6)
	est, err := buildTool(tool, min, max, capacity, seed)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("abwprobe: running %s toward %s\n", est.Name(), to)
	rep, err := est.Estimate(tr)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Println(rep)
	fmt.Printf("  overhead: %d probe bytes\n", rep.ProbeBytes)
	if rep.Low != rep.High {
		fmt.Println("  note: the range is the avail-bw variation at the probing timescale,")
		fmt.Println("        NOT a confidence interval for the mean (misconception #9)")
	}
}

func buildTool(name string, min, max, capacity unit.Rate, seed uint64) (core.Estimator, error) {
	switch name {
	case "pathload":
		return pathload.New(pathload.Config{MinRate: min, MaxRate: max})
	case "pathchirp":
		return pathchirp.New(pathchirp.Config{Lo: min, Hi: max})
	case "topp":
		return topp.New(topp.Config{MinRate: min, MaxRate: max})
	case "ptr":
		return igi.New(igi.Config{InitRate: max})
	case "igi":
		if capacity <= 0 {
			return nil, fmt.Errorf("igi needs -capacity (direct probing)")
		}
		return igi.New(igi.Config{Mode: igi.IGI, Capacity: capacity})
	case "delphi":
		if capacity <= 0 {
			return nil, fmt.Errorf("delphi needs -capacity (direct probing)")
		}
		return delphi.New(delphi.Config{Capacity: capacity})
	case "spruce":
		if capacity <= 0 {
			return nil, fmt.Errorf("spruce needs -capacity (direct probing)")
		}
		return spruce.New(spruce.Config{Capacity: capacity, Rand: rng.New(seed)})
	default:
		return nil, fmt.Errorf("unknown tool %q (try pathload, pathchirp, topp, ptr, igi, delphi, spruce)", name)
	}
}
