// Command abwprobe runs avail-bw estimation over real UDP sockets: a
// receiver on one end of the path, a sender with a choice of estimation
// technique on the other. Tools come from the estimator registry; run
// with -tools for the catalog and each tool's requirements.
//
// Receiver — a concurrent multi-session measurement server: many
// senders may probe it at once, each in its own session; -max-sessions
// bounds them and -stats controls the periodic stats line. -stats-json
// switches those lines to one-line JSON on stdout — the same wire shape
// abwmonitor serves in /api/status, so the two feed the same tooling.
// Datagrams are drained through the batched ingest fast path (recvmmsg
// with kernel RX timestamps) where the platform supports it; -rcvbuf
// requests a socket receive buffer (the kernel-granted size is logged
// and surfaced in the stats), and -ingest-fallback forces the portable
// single-read loop for A/B comparison:
//
//	abwprobe -mode recv -listen 0.0.0.0:9876 -max-sessions 128 -stats 5s
//	abwprobe -mode recv -listen 0.0.0.0:9876 -rcvbuf 4194304 -stats 5s
//	abwprobe -mode recv -listen 0.0.0.0:9876 -stats 5s -stats-json | jq .active_sessions
//
// Sender (pathload over the live path):
//
//	abwprobe -mode send -to host:9876 -tool pathload -min 1 -max 900
//
// Simulated scenario (any tool against a cataloged condition, with the
// ground truth printed alongside the estimate):
//
//	abwprobe -mode sim -scenario bursty -tool spruce
//	abwprobe -scenarios                  # the scenario catalog
//
// Direct-probing tools need -capacity, the tight-link capacity in Mbps
// — mind the paper's pitfall about measuring it with capacity tools,
// which report the narrow link. In -mode sim the scenario's true
// tight-link capacity is used when -capacity is absent.
//
// Exit codes: 0 on success, 1 when the estimation itself fails, 2 on
// usage errors (unknown tool, missing required flag).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"abw"
)

const (
	exitOK    = 0
	exitEstim = 1
	exitUsage = 2
)

func main() {
	var (
		mode      = flag.String("mode", "", "recv, send, or sim")
		listen    = flag.String("listen", "0.0.0.0:9876", "receiver control address")
		maxSess   = flag.Int("max-sessions", 0, "receiver: max concurrent sender sessions (0 = default 64)")
		statsDur  = flag.Duration("stats", 5*time.Second, "receiver: stats line interval on stderr (0 = off)")
		statsJSON = flag.Bool("stats-json", false, "receiver: emit stats lines as JSON on stdout (abwmonitor's wire shape)")
		rcvBuf    = flag.Int("rcvbuf", 0, "receiver: request this SO_RCVBUF in bytes on the probe socket (0 = OS default); the kernel-granted size is logged and surfaced in -stats-json")
		fallback  = flag.Bool("ingest-fallback", false, "receiver: force the portable single-read ingest path (no batched syscalls, userspace timestamps)")
		to        = flag.String("to", "", "receiver address to probe toward")
		tool      = flag.String("tool", "pathload", "estimation technique (see -tools)")
		tools     = flag.Bool("tools", false, "list the registered tools and exit")
		scens     = flag.Bool("scenarios", false, "list the cataloged simulated scenarios and exit")
		scenName  = flag.String("scenario", "canonical", "cataloged scenario for -mode sim (see -scenarios)")
		minMbps   = flag.Float64("min", 1, "minimum probing rate (Mbps)")
		maxMbps   = flag.Float64("max", 500, "maximum probing rate (Mbps)")
		capMbps   = flag.Float64("capacity", 0, "tight-link capacity (Mbps), for direct-probing tools")
		pktSize   = flag.Int("pktsize", 0, "probe packet size in bytes (0 = tool default)")
		length    = flag.Int("len", 0, "packets per probing stream (0 = tool default)")
		repeat    = flag.Int("repeat", 0, "streams per rate / trains / chirps / pairs (0 = tool default)")
		rounds    = flag.Int("rounds", 0, "max probing-rate search rounds (0 = tool default)")
		budgetS   = flag.Int("max-streams", 0, "probing budget: max streams (0 = unlimited)")
		budgetP   = flag.Int("max-packets", 0, "probing budget: max packets (0 = unlimited)")
		budgetD   = flag.Duration("max-duration", 0, "probing budget: max estimation time (0 = unlimited)")
		jsonOut   = flag.Bool("json", false, "print the report as JSON on stdout")
		progress  = flag.Bool("progress", false, "print per-stream progress to stderr")
		seed      = flag.Uint64("seed", uint64(time.Now().UnixNano()), "random seed")
	)
	flag.Parse()
	if *tools {
		printTools()
		return
	}
	if *scens {
		printScenarios()
		return
	}
	mkParams := func() abw.Params {
		if *minMbps <= 0 || *maxMbps <= *minMbps {
			usageErr("need 0 < -min < -max (got %g, %g)", *minMbps, *maxMbps)
		}
		return abw.Params{
			RateLo:    abw.Rate(*minMbps * 1e6),
			RateHi:    abw.Rate(*maxMbps * 1e6),
			Capacity:  abw.Rate(*capMbps * 1e6),
			PktSize:   abw.Bytes(*pktSize),
			StreamLen: *length,
			Repeat:    *repeat,
			MaxRounds: *rounds,
			Rand:      abw.NewRand(*seed),
			Budget: abw.Budget{
				MaxStreams:  *budgetS,
				MaxPackets:  *budgetP,
				MaxDuration: *budgetD,
			},
		}
	}
	switch *mode {
	case "recv":
		recv(*listen, *maxSess, *rcvBuf, *fallback, *statsDur, *statsJSON)
	case "send":
		if *to == "" {
			usageErr("send mode needs -to host:port")
		}
		send(*to, *tool, mkParams(), *jsonOut, *progress)
	case "sim":
		simulate(*scenName, *tool, mkParams(), *jsonOut, *progress)
	default:
		usageErr("pick -mode recv, -mode send, or -mode sim")
	}
}

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "abwprobe: "+format+"\n", args...)
	os.Exit(exitUsage)
}

func printTools() {
	fmt.Println("Registered estimation techniques:")
	for _, d := range abw.Tools() {
		fmt.Printf("  %-10s %s\n", d.Name, d.Summary)
		if reqs := flagRequirements(d); reqs != "" {
			fmt.Printf("  %-10s requires %s\n", "", reqs)
		}
	}
}

// flagRequirements renders a descriptor's needs in terms of this CLI's
// flags: the registry knows what a tool requires; only the flag
// spelling lives here.
func flagRequirements(d abw.Tool) string {
	var reqs []string
	if d.NeedsCapacity {
		reqs = append(reqs, flagFor("Capacity"))
	}
	if d.SimOnly {
		reqs = append(reqs, "a simulated path (not available over live sockets)")
	}
	return strings.Join(reqs, ", ")
}

// flagFor maps a registry Params field name onto this CLI's flag
// spelling, for requirement errors.
func flagFor(field string) string {
	switch field {
	case "Capacity":
		return "-capacity (tight-link capacity, Mbps)"
	case "RateLo/RateHi":
		return "-min/-max (probing-rate bracket, Mbps)"
	case "Rand":
		return "-seed"
	}
	return field
}

func printScenarios() {
	fmt.Println("Cataloged simulated scenarios (-mode sim -scenario <name>):")
	for _, d := range abw.Scenarios() {
		name := d.Name
		if len(d.Aliases) > 0 {
			name += " (" + strings.Join(d.Aliases, ", ") + ")"
		}
		fmt.Printf("  %-32s %s\n", name, d.Summary)
	}
}

// flagWasSet reports whether the named flag was given explicitly.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// simulate runs the tool against a cataloged scenario: the same
// registry path as a live run, but with exact ground truth to judge
// the estimate against.
func simulate(scenarioName, tool string, params abw.Params, jsonOut, progress bool) {
	d, ok := abw.LookupTool(tool)
	if !ok {
		usageErr("unknown tool %q (see -tools)", tool)
	}
	sc, err := abw.NewScenario(scenarioName)
	if err != nil {
		usageErr("%v (see -scenarios)", err)
	}
	// Scenario ground truth fills what the flags left out: the true
	// tight-link capacity, and a probing bracket derived from it.
	if !flagWasSet("min") && !flagWasSet("max") {
		params.RateLo, params.RateHi = 0, 0
	}
	if params.Capacity == 0 {
		params.Capacity = sc.Capacity
	}
	if progress {
		params.Observer = func(ev abw.StreamEvent) {
			fmt.Fprintf(os.Stderr, "  stream %d: %d pkts (%d lost) at %v\n",
				ev.Stream, ev.Packets, ev.Lost, ev.At.Round(time.Millisecond))
		}
	}
	if !jsonOut {
		fmt.Printf("abwprobe: running %s on scenario %q (%d hops, true avail-bw %.2f Mbps",
			d.Name, sc.Name, sc.Hops(), sc.TrueAvailBw.MbpsOf())
		if sc.TightLink != sc.NarrowLink {
			fmt.Printf("; tight link %d ≠ narrow link %d", sc.TightLink, sc.NarrowLink)
		}
		fmt.Println(")")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rep, err := abw.Estimate(ctx, d.Name, params, sc.Transport)
	if err != nil {
		if jsonOut {
			printJSON(d.Name, rep, err)
		}
		fmt.Fprintf(os.Stderr, "abwprobe: %v\n", err)
		os.Exit(exitEstim)
	}
	if jsonOut {
		printJSON(d.Name, rep, nil)
		return
	}
	fmt.Println(rep)
	errPct := 100 * (rep.Point.MbpsOf() - sc.TrueAvailBw.MbpsOf()) / sc.TrueAvailBw.MbpsOf()
	fmt.Printf("  true avail-bw: %.2f Mbps (estimate off by %+.1f%%)\n", sc.TrueAvailBw.MbpsOf(), errPct)
}

// recv runs the multi-session measurement server until interrupted,
// periodically reporting sessions, streams, packets, and drops — as
// text on stderr, or with jsonStats as one-line JSON on stdout in the
// monitor's wire shape (abw.EncodeReceiverStats).
func recv(listen string, maxSessions, rcvBuf int, fallback bool, statsEvery time.Duration, jsonStats bool) {
	r, err := abw.ListenReceiverConfig(listen, abw.ReceiverConfig{
		MaxSessions:   maxSessions,
		RcvBuf:        rcvBuf,
		ForceFallback: fallback,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "abwprobe: %v\n", err)
		os.Exit(exitEstim)
	}
	defer r.Close()
	st := r.Stats()
	tsSrc := "userspace clock"
	if st.KernelTimestamps {
		tsSrc = "kernel RX timestamps"
	}
	fmt.Fprintf(os.Stderr, "abwprobe: receiving on %s (ctrl+c to stop)\n", r.Addr())
	fmt.Fprintf(os.Stderr, "abwprobe: ingest: %s, rcvbuf granted %d bytes", tsSrc, st.RcvBufBytes)
	if rcvBuf > 0 {
		fmt.Fprintf(os.Stderr, " (requested %d; Linux reports double the usable request)", rcvBuf)
	}
	fmt.Fprintln(os.Stderr)
	report := func() {
		if jsonStats {
			if err := abw.EncodeReceiverStats(os.Stdout, r.Stats()); err != nil {
				fmt.Fprintf(os.Stderr, "abwprobe: encoding stats: %v\n", err)
			}
			return
		}
		fmt.Fprintf(os.Stderr, "abwprobe: %v\n", r.Stats())
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	if statsEvery <= 0 {
		<-ch
		report()
		return
	}
	tick := time.NewTicker(statsEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			report()
		case <-ch:
			report()
			return
		}
	}
}

func send(to, tool string, params abw.Params, jsonOut, progress bool) {
	// Usage errors — unknown tool, a requirement the flags did not
	// satisfy — exit 2 before any packet is sent. The requirement list
	// comes from the tool's registry descriptor, not from hand-written
	// per-tool checks.
	d, ok := abw.LookupTool(tool)
	if !ok {
		var names []string
		for _, n := range abw.Tools() {
			if !n.SimOnly { // suggest only tools the live CLI can run
				names = append(names, n.Name)
			}
		}
		usageErr("unknown tool %q (try %s)", tool, strings.Join(names, ", "))
	}
	if d.SimOnly {
		usageErr("%s requires %s", d.Name, flagRequirements(d))
	}
	if missing := d.MissingParams(params); len(missing) > 0 {
		flags := make([]string, len(missing))
		for i, m := range missing {
			flags[i] = flagFor(m)
		}
		usageErr("%s needs %s", d.Name, strings.Join(flags, ", "))
	}
	if progress {
		params.Observer = func(ev abw.StreamEvent) {
			fmt.Fprintf(os.Stderr, "  stream %d: %d pkts (%d lost) at %v\n",
				ev.Stream, ev.Packets, ev.Lost, ev.At.Round(time.Millisecond))
		}
	}

	tr, err := abw.DialReceiver(to)
	if err != nil {
		fmt.Fprintf(os.Stderr, "abwprobe: %v\n", err)
		os.Exit(exitEstim)
	}
	defer tr.Close()

	// Ctrl+C cancels the context; the estimator stops at the next
	// stream boundary and the run reports the cancellation. The
	// handler deregisters on first cancellation so a second Ctrl+C
	// force-quits a probe stuck inside a stream.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)

	if !jsonOut {
		fmt.Printf("abwprobe: running %s toward %s\n", d.Name, to)
	}
	rep, err := abw.Estimate(ctx, d.Name, params, tr)
	if err != nil {
		if jsonOut {
			printJSON(d.Name, rep, err)
		}
		fmt.Fprintf(os.Stderr, "abwprobe: %v\n", err)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "abwprobe: interrupted at a stream boundary")
		}
		os.Exit(exitEstim)
	}
	if jsonOut {
		printJSON(d.Name, rep, nil)
		return
	}
	fmt.Println(rep)
	fmt.Printf("  overhead: %d probe bytes\n", rep.ProbeBytes)
	if rep.Low != rep.High {
		fmt.Println("  note: the range is the avail-bw variation at the probing timescale,")
		fmt.Println("        NOT a confidence interval for the mean (misconception #9)")
	}
}

// printJSON marshals the run's outcome — report or error — in the one
// shared JSON shape (core.Outcome).
func printJSON(tool string, rep *abw.Report, err error) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if encErr := enc.Encode(abw.NewOutcome(tool, rep, err)); encErr != nil {
		fmt.Fprintf(os.Stderr, "abwprobe: encoding report: %v\n", encErr)
	}
}
