// Command abwmonitor runs the continuous avail-bw monitoring service:
// periodic estimates for a fleet of targets, ring-buffered time series
// with variation-range rollups, a fleet-wide admission-controlled
// probing budget, and an HTTP surface (JSON + Prometheus /metrics).
//
// Targets are `[tenant/]name=tool@dest` specs. In -mode sim dest is a
// scenario-catalog name (see abwprobe -scenarios) and the whole service
// is hermetic — no sockets, exact ground truth per point. In -mode live
// dest is a receiver's control address (abwprobe -mode recv on the far
// end), or the literal `local` for the in-process receiver started by
// -recv.
//
// Hermetic fleet, ground truth alongside every estimate:
//
//	abwmonitor -mode sim -target edge-a=spruce@canonical -target acme/edge-b=pathload@bursty
//
// Load test: 1000 simulated sessions, metrics scrapeable, stop after 30s:
//
//	abwmonitor -mode sim -fanout 1000 -tool spruce -interval 5s -for 30s -http 127.0.0.1:9877
//
// Live, with the fleet's probing held under 5 Mbps aggregate:
//
//	abwmonitor -mode live -target nyc=spruce@probe-nyc:9876 -capacity 100 -max-bps 5
//
// On shutdown (interrupt or -for expiry) the final status document —
// the same shape /api/status serves — is printed as JSON on stdout.
// Exit codes: 0 on clean shutdown, 1 on runtime failure, 2 on usage
// errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"abw"
)

const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
)

// targetSpecs collects repeated -target flags.
type targetSpecs []string

func (t *targetSpecs) String() string     { return strings.Join(*t, ",") }
func (t *targetSpecs) Set(v string) error { *t = append(*t, v); return nil }

func main() {
	var specs targetSpecs
	flag.Var(&specs, "target", "target spec `[tenant/]name=tool@dest` (repeatable)")
	var (
		mode        = flag.String("mode", "", "sim (dest = scenario name) or live (dest = receiver address)")
		fanout      = flag.Int("fanout", 0, "sim: add N generated targets round-robin over the scenario catalog")
		tool        = flag.String("tool", "spruce", "tool for -fanout targets")
		interval    = flag.Duration("interval", 10*time.Second, "time between a target's runs")
		jitter      = flag.Float64("jitter", 0.1, "per-target schedule jitter as a fraction of the interval [0, 0.5]")
		seed        = flag.Uint64("seed", uint64(time.Now().UnixNano()), "random seed (jitter, tool randomness, sim traffic)")
		concurrency = flag.Int("concurrency", 0, "max estimation runs in flight (0 = default 16)")
		history     = flag.Int("history", 0, "points kept per series (0 = default 512)")
		httpAddr    = flag.String("http", "127.0.0.1:9877", "HTTP address for /api and /metrics (empty = no HTTP)")
		snapshot    = flag.String("snapshot", "", "persist the series store to this file and restore from it at startup")
		snapEvery   = flag.Duration("snapshot-every", time.Minute, "snapshot cadence when -snapshot is set")
		retention   = flag.Duration("retention", 0, "drop points older than this before each snapshot (0 = keep all)")
		runFor      = flag.Duration("for", 0, "stop after this long (0 = run until interrupted)")
		recvAddr    = flag.String("recv", "", "live: also run an in-process receiver here; targets may use dest `local`")
		maxSess     = flag.Int("max-sessions", 0, "in-process receiver: max concurrent sessions (0 = default 64)")
		runTimeout  = flag.Duration("run-timeout", 0, "wall-time cap per estimation run (0 = default 2m)")
		poolSize    = flag.Int("pool", 0, "sessions dialed per live receiver (0 = default)")
		// Tool parameters, applied to every target (zero = tool default).
		capMbps  = flag.Float64("capacity", 0, "tight-link capacity (Mbps), for direct-probing tools on live targets")
		pktSize  = flag.Int("pktsize", 0, "probe packet size in bytes")
		length   = flag.Int("len", 0, "packets per probing stream")
		repeat   = flag.Int("repeat", 0, "streams per rate / trains / chirps / pairs")
		rounds   = flag.Int("rounds", 0, "max probing-rate search rounds")
		estBytes = flag.Int64("est-bytes", 0, "admission hint: projected probe bytes per run before actuals are known")
		// Fleet admission: lifetime budget plus aggregate rate cap.
		maxBytes   = flag.Int64("max-bytes", 0, "fleet lifetime probing budget in bytes (0 = unlimited)")
		maxStreams = flag.Int("max-streams", 0, "fleet lifetime probing budget in streams (0 = unlimited)")
		maxPackets = flag.Int("max-packets", 0, "fleet lifetime probing budget in packets (0 = unlimited)")
		maxMbps    = flag.Float64("max-bps", 0, "fleet aggregate probe-rate cap in Mbps (0 = unlimited)")
		rateWin    = flag.Duration("rate-window", 0, "sliding window for -max-bps (0 = default 1s)")
	)
	flag.Parse()
	if *mode != "sim" && *mode != "live" {
		usageErr("pick -mode sim or -mode live")
	}
	if flag.NArg() > 0 {
		usageErr("unexpected argument %q (targets are given with -target)", flag.Arg(0))
	}

	params := abw.Params{
		Capacity:  abw.Rate(*capMbps * 1e6),
		PktSize:   abw.Bytes(*pktSize),
		StreamLen: *length,
		Repeat:    *repeat,
		MaxRounds: *rounds,
	}
	targets := make([]abw.MonitorTarget, 0, len(specs)+*fanout)
	for _, spec := range specs {
		t, err := parseTarget(*mode, spec)
		if err != nil {
			usageErr("%v", err)
		}
		t.Params = params
		t.EstBytes = abw.Bytes(*estBytes)
		targets = append(targets, t)
	}
	if *fanout > 0 {
		if *mode != "sim" {
			usageErr("-fanout generates simulated targets; it needs -mode sim")
		}
		targets = append(targets, fanoutTargets(*fanout, *tool, params, abw.Bytes(*estBytes))...)
	}
	if len(targets) == 0 {
		usageErr("no targets: give -target specs%s", map[bool]string{true: " or -fanout N", false: ""}[*mode == "sim"])
	}

	// Optional in-process receiver: its address substitutes for the
	// literal dest `local`, and its stats ride along in /api/status.
	var recv *abw.Receiver
	if *recvAddr != "" {
		if *mode != "live" {
			usageErr("-recv runs a live receiver; it needs -mode live")
		}
		var err error
		recv, err = abw.ListenReceiverConfig(*recvAddr, abw.ReceiverConfig{MaxSessions: *maxSess})
		if err != nil {
			fatal("%v", err)
		}
		defer recv.Close()
		fmt.Fprintf(os.Stderr, "abwmonitor: receiving on %s\n", recv.Addr())
		for i := range targets {
			if targets[i].Addr == "local" {
				targets[i].Addr = recv.Addr()
			}
		}
	}

	m, err := abw.NewMonitor(abw.MonitorConfig{
		Targets:       targets,
		Interval:      *interval,
		Jitter:        *jitter,
		Seed:          *seed,
		MaxConcurrent: *concurrency,
		History:       *history,
		Budget: abw.Budget{
			MaxStreams: *maxStreams,
			MaxPackets: *maxPackets,
			MaxBytes:   abw.Bytes(*maxBytes),
		},
		MaxProbeRate:  abw.Rate(*maxMbps * 1e6),
		RateWindow:    *rateWin,
		RunTimeout:    *runTimeout,
		PoolSize:      *poolSize,
		SnapshotPath:  *snapshot,
		SnapshotEvery: *snapEvery,
		Retention:     *retention,
		Receiver:      recv,
	})
	if err != nil {
		usageErr("%v", err)
	}

	var srv *http.Server
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal("%v", err)
		}
		srv = &http.Server{Handler: m.Handler()}
		go srv.Serve(ln)
		fmt.Fprintf(os.Stderr, "abwmonitor: serving http://%s/ (/api/status, /api/series, /metrics)\n", ln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *runFor > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runFor)
		defer cancel()
	}

	m.Start()
	fmt.Fprintf(os.Stderr, "abwmonitor: monitoring %d targets every %v (ctrl+c to stop)\n", len(targets), *interval)
	<-ctx.Done()
	stop() // a second ctrl+c during shutdown force-quits
	m.Close()
	if srv != nil {
		srv.Close()
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m.Status()); err != nil {
		fatal("encoding final status: %v", err)
	}
	os.Exit(exitOK)
}

// parseTarget turns a `[tenant/]name=tool@dest` spec into a target;
// -mode decides whether dest is a scenario name or a receiver address.
func parseTarget(mode, spec string) (abw.MonitorTarget, error) {
	var t abw.MonitorTarget
	rest := spec
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		t.Tenant, rest = rest[:i], rest[i+1:]
	}
	name, toolDest, ok := strings.Cut(rest, "=")
	if !ok {
		return t, fmt.Errorf("target %q: want [tenant/]name=tool@dest", spec)
	}
	tool, dest, ok := strings.Cut(toolDest, "@")
	if !ok || name == "" || tool == "" || dest == "" {
		return t, fmt.Errorf("target %q: want [tenant/]name=tool@dest", spec)
	}
	t.Name, t.Tool = name, tool
	if mode == "sim" {
		t.Scenario = dest
	} else {
		t.Addr = dest
	}
	return t, nil
}

// fanoutTargets generates n simulated targets spread round-robin over
// the scenario catalog and a handful of tenants — the load-test shape.
func fanoutTargets(n int, tool string, params abw.Params, est abw.Bytes) []abw.MonitorTarget {
	catalog := abw.Scenarios()
	targets := make([]abw.MonitorTarget, n)
	for i := range targets {
		targets[i] = abw.MonitorTarget{
			Name:     fmt.Sprintf("sim-%04d", i),
			Tenant:   fmt.Sprintf("load-%d", i%8),
			Tool:     tool,
			Scenario: catalog[i%len(catalog)].Name,
			Params:   params,
			EstBytes: est,
		}
	}
	return targets
}

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "abwmonitor: "+format+"\n", args...)
	os.Exit(exitUsage)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "abwmonitor: "+format+"\n", args...)
	os.Exit(exitRuntime)
}
