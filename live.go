package abw

import (
	"abw/internal/livenet"
)

// Receiver is the live probing sink: a concurrent multi-session
// measurement server — a UDP socket recording per-packet arrival
// timestamps, with a TCP control channel per sender session reporting
// them back. Many senders may probe one receiver at once; each control
// connection gets its own server-assigned session, and a session's
// state is reaped when its connection closes.
type Receiver = livenet.Receiver

// ReceiverConfig bounds a live receiver's resource usage: concurrent
// sessions, and outstanding streams/bytes per session. Zero fields
// take the defaults.
type ReceiverConfig = livenet.Config

// ReceiverStats is a snapshot of a live receiver's counters: active
// and lifetime sessions/streams, stamped packets, and drops by cause.
type ReceiverStats = livenet.Stats

// LiveTransport implements Transport over real UDP sockets; it is what
// cmd/abwprobe's send mode and the liveprobe example run estimators
// on. Like every Transport it is single-stream — use a LivePool for
// concurrent estimation.
type LiveTransport = livenet.Transport

// LivePool is N independent live transports to one receiver — one
// session each — for running several estimators over the same path at
// once (examples/concurrentprobes measures the paper's intrusiveness
// pitfall with it).
type LivePool = livenet.Pool

// ListenReceiver starts a live receiver with default limits on the
// given TCP address (e.g. "127.0.0.1:0"); the UDP probe socket binds
// the same port.
func ListenReceiver(addr string) (*Receiver, error) {
	return livenet.ListenReceiver(addr)
}

// ListenReceiverConfig starts a live receiver with explicit limits.
func ListenReceiverConfig(addr string, cfg ReceiverConfig) (*Receiver, error) {
	return livenet.ListenReceiverConfig(addr, cfg)
}

// DialReceiver connects a live transport to a receiver's control
// address; every registered end-to-end tool can then Estimate over it.
func DialReceiver(addr string) (*LiveTransport, error) {
	return livenet.Dial(addr)
}

// DialReceiverPool dials n live transports to a receiver's control
// address for concurrent estimation.
func DialReceiverPool(addr string, n int) (*LivePool, error) {
	return livenet.DialPool(addr, n)
}
