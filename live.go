package abw

import (
	"abw/internal/livenet"
)

// Receiver is the live probing sink: a UDP socket recording per-packet
// arrival timestamps, with a TCP control channel reporting them back.
type Receiver = livenet.Receiver

// LiveTransport implements Transport over real UDP sockets; it is what
// cmd/abwprobe's send mode and the liveprobe example run estimators on.
type LiveTransport = livenet.Transport

// ListenReceiver starts a live receiver on the given TCP address (e.g.
// "127.0.0.1:0"); the UDP probe socket binds the same port.
func ListenReceiver(addr string) (*Receiver, error) {
	return livenet.ListenReceiver(addr)
}

// DialReceiver connects a live transport to a receiver's control
// address; every registered end-to-end tool can then Estimate over it.
func DialReceiver(addr string) (*LiveTransport, error) {
	return livenet.Dial(addr)
}
