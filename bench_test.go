// Benchmarks regenerating every table and figure of the paper. Each
// benchmark runs a reduced-size configuration of the corresponding
// experiment so a full -bench=. pass stays in the minutes range;
// cmd/abwsim runs the paper-scale versions, and the per-tool ablation
// benchmarks live with their tools (internal/tools/*/ablation_bench_test.go). Custom metrics attach the scientifically
// relevant quantity of each experiment (error, ratio, Mbps) to the
// benchmark output, so a bench run doubles as a regression record of the
// reproduced shapes.
package abw_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"abw/internal/exp"
	"abw/internal/runner"
	"abw/internal/tools/toolstest"
	"abw/internal/unit"
)

// BenchmarkFigure1 regenerates the sampling-variability CDFs (pitfall 1).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure1(exp.Figure1Config{
			Trials:    120,
			TraceSpan: 10 * time.Second,
			Seed:      uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		// Spread of the 1ms error distribution: the figure's headline.
		s := res.Series[0]
		b.ReportMetric(s.CDF.Quantile(0.95)-s.CDF.Quantile(0.05), "eps-spread-1ms")
		b.ReportMetric(res.Series[2].CDF.Quantile(0.95)-res.Series[2].CDF.Quantile(0.05), "eps-spread-100ms")
	}
}

// BenchmarkFigure2 regenerates the duration-vs-timescale comparison
// (pitfall 2).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure2(exp.Figure2Config{Streams: 50, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Points[0], res.Points[len(res.Points)-1]
		b.ReportMetric(first.SampleSD/first.PopulationSD, "sd-ratio-25ms")
		b.ReportMetric(last.SampleSD/last.PopulationSD, "sd-ratio-200ms")
	}
}

// BenchmarkTable1 regenerates the cross-packet-size error table
// (fallacy 4).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Table1(exp.Table1Config{
			CrossSizes: []unit.Bytes{40, 1500},
			SampleKs:   []int{10, 100},
			Trials:     10,
			Seed:       uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		e40, _ := res.Cell(40, 10)
		e1500, _ := res.Cell(1500, 10)
		b.ReportMetric(e40, "eps-40B-k10")
		b.ReportMetric(e1500, "eps-1500B-k10")
	}
}

// BenchmarkFigure3 regenerates the burstiness response curves
// (pitfall 6).
func BenchmarkFigure3(b *testing.B) {
	rates := []unit.Rate{15 * unit.Mbps, 22.5 * unit.Mbps, 27.5 * unit.Mbps}
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure3(exp.Figure3Config{
			Rates: rates, Streams: 100, StreamLen: 40, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Series {
			if s.Model == exp.ModelPareto {
				r, _ := s.RatioAt(22.5 * unit.Mbps)
				b.ReportMetric(r, "pareto-ratio-below-A")
			}
		}
	}
}

// BenchmarkFigure4 regenerates the multiple-bottleneck curves
// (pitfall 7).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure4(exp.Figure4Config{
			Rates:   []unit.Rate{25 * unit.Mbps},
			Streams: 80, StreamLen: 40, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Series {
			if s.TightLinks == 5 {
				r, _ := s.RatioAt(25 * unit.Mbps)
				b.ReportMetric(r, "ratio-at-A-5links")
			}
		}
	}
}

// BenchmarkFigure5 regenerates the OWD-trend-vs-ratio demonstration
// (fallacy 8).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure5(exp.Figure5Config{Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Above.Trend.PCT, "pct-above")
		b.ReportMetric(res.Below.Trend.PCT, "pct-below")
	}
}

// BenchmarkFigure6 regenerates the variation-range sample path
// (fallacy 9).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure6(exp.Figure6Config{Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Q95-res.Q05, "range-width-mbps")
	}
}

// BenchmarkFigure7 regenerates the TCP-vs-avail-bw curves (pitfall 10).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure7(exp.Figure7Config{
			Windows:  []int{4, 256},
			Duration: 10 * time.Second,
			Seed:     uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Series {
			v, _ := s.At(256)
			switch s.CrossType {
			case exp.CrossBufferLimited:
				b.ReportMetric(v, "responsive-wr256-mbps")
			case exp.CrossParetoUDP:
				b.ReportMetric(v, "unresponsive-wr256-mbps")
			}
		}
	}
}

// BenchmarkLatencyAccuracy regenerates the fallacy-3 tradeoff grid.
func BenchmarkLatencyAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.LatencyAccuracy(exp.LatencyAccuracyConfig{
			Durations: []time.Duration{10 * time.Millisecond, 200 * time.Millisecond},
			Counts:    []int{5, 40},
			Trials:    8,
			Seed:      uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		short, _ := res.Cell(10*time.Millisecond, 5)
		long, _ := res.Cell(200*time.Millisecond, 40)
		b.ReportMetric(short.RMSError, "rms-short-few")
		b.ReportMetric(long.RMSError, "rms-long-many")
	}
}

// BenchmarkNarrowVsTight regenerates the pitfall-5 comparison.
func BenchmarkNarrowVsTight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.NarrowVsTight(exp.NarrowVsTightConfig{Trains: 10, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WithNarrowCapacity-res.TrueAvailBwMbps, "narrow-bias-mbps")
	}
}

// BenchmarkParallelScaling runs the same Figure 3 grid with 1 worker
// (serial execution) and one worker per CPU, quantifying the trial
// engine's wall-clock speedup. The results are bit-identical at every
// worker count (TestParallelDeterminism); only the elapsed time moves.
// On a 4-core machine the all-cores case is expected to finish the grid
// at least ~2x faster than workers-1.
func BenchmarkParallelScaling(b *testing.B) {
	cfg := exp.Figure3Config{
		Rates:   []unit.Rate{10 * unit.Mbps, 17.5 * unit.Mbps, 22.5 * unit.Mbps, 27.5 * unit.Mbps},
		Streams: 120, StreamLen: 40, Seed: 1,
	}
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			runner.SetWorkers(w)
			defer runner.SetWorkers(0)
			for i := 0; i < b.N; i++ {
				if _, err := exp.Figure3(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatrix runs the full tools×scenarios matrix in quick mode:
// every registered end-to-end tool against every cataloged scenario.
// This is the workload the hot-path pooling and the bounded aggregate
// recorders were built for — dozens of long-horizon scenario
// compilations probed concurrently.
func BenchmarkMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Matrix(exp.MatrixConfig{Quick: true, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		failed := 0
		for _, c := range res.Cells {
			if c.Err != nil {
				failed++
			}
		}
		b.ReportMetric(float64(len(res.Cells)), "cells")
		b.ReportMetric(float64(failed), "failed-cells")
	}
}

// BenchmarkSimulatorThroughput measures raw simulator event throughput:
// the cost driver behind every experiment above.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := toolstest.New(toolstest.Options{
			Model:   toolstest.Poisson,
			Seed:    toolstest.Seed(uint64(i + 1)),
			Horizon: time.Second,
		})
		sc.Sim.RunUntil(time.Second)
		if sc.Recorders[0].Drops() != 0 {
			b.Fatal("unexpected drops")
		}
	}
}
