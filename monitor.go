package abw

import (
	"io"
	"time"

	"abw/internal/monitor"
)

// Monitor is the fleet-scale continuous measurement service: periodic
// estimates for N targets × tools (live receivers or simulated
// scenarios), ring-buffered time series with variation-range rollups,
// a fleet-wide admission-controlled probing budget, and an HTTP surface
// (JSON + Prometheus text) via Handler. Build with NewMonitor, start
// with Start, stop with Close. cmd/abwmonitor is the CLI over it.
type Monitor = monitor.Monitor

// MonitorConfig assembles a Monitor: targets, cadence, concurrency,
// history depth, fleet budget and probe-rate cap, snapshot persistence,
// and the injectable clock that makes tests hermetic.
type MonitorConfig = monitor.Config

// MonitorTarget is one scheduled assignment: a tool run periodically
// against a live receiver address or a cataloged scenario.
type MonitorTarget = monitor.Target

// MonitorStats is a snapshot of a monitor's scheduler counters.
type MonitorStats = monitor.Stats

// MonitorStatus is the full status document (scheduler + ledger +
// optional receiver counters) served at /api/status.
type MonitorStatus = monitor.Status

// MonitorPoint is one completed (or refused) estimation run in a
// series: the estimate and its variation range, the scenario ground
// truth for sim targets, and the run's measured probing cost.
type MonitorPoint = monitor.Point

// MonitorRollup summarizes a series' buffered window: min/mean/max of
// the estimates plus the union of the runs' variation ranges — the
// paper's "avail-bw is a process, not a number" as an operator-facing
// aggregate.
type MonitorRollup = monitor.Rollup

// MonitorSeries is the fixed-capacity ring-buffered history of one
// (target, tool).
type MonitorSeries = monitor.Series

// MonitorStore holds every series a monitor maintains.
type MonitorStore = monitor.Store

// MonitorLedger is the fleet-wide admission controller: a shared,
// concurrency-safe probing budget plus an aggregate probe-rate cap.
// Admission is reserve-then-commit, so concurrent runs can never
// jointly overshoot a cap.
type MonitorLedger = monitor.Ledger

// MonitorLedgerStats snapshots the ledger's admission accounting,
// overall and per tenant.
type MonitorLedgerStats = monitor.LedgerStats

// MonitorCost is one run's declared probing cost: what admission
// reserves up front and what the run commits afterwards.
type MonitorCost = monitor.Cost

// MonitorClock is the injectable time source a Monitor schedules
// against; nil MonitorConfig.Clock means the real clock.
type MonitorClock = monitor.Clock

// FakeClock is a manually advanced MonitorClock for deterministic
// tests: time moves only on Advance, and due timers fire inside it.
type FakeClock = monitor.FakeClock

// NewMonitor validates the config and builds the monitor without
// starting it.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) { return monitor.New(cfg) }

// NewFakeClock returns a fake clock starting at the given instant.
func NewFakeClock(at time.Time) *FakeClock { return monitor.NewFakeClock(at) }

// EncodeReceiverStats writes a live receiver's counters as one line of
// JSON — the same wire shape the monitor serves in /api/status, shared
// with cmd/abwprobe's -stats-json.
func EncodeReceiverStats(w io.Writer, st ReceiverStats) error {
	return monitor.EncodeReceiverStats(w, st)
}
