package abw

// This file extends the facade with the probe-feature layer and the
// learned estimator's model types: enough surface to extract the
// canonical feature vector from external measurements, evaluate the
// committed weights, or train replacement weights from custom data —
// without importing internal/.

import (
	"context"

	"abw/internal/core"
	"abw/internal/probe"
	"abw/internal/tools/learned"
)

// Probe-feature layer: the deterministic reduction of a probing stream
// that all tools (and the learned model) share.
type (
	// ProbeSpec describes one probing stream (rate, packet size, count).
	ProbeSpec = probe.StreamSpec
	// ProbeRecord is a delivered stream: send and receive timestamps.
	ProbeRecord = probe.Record
	// FeatureVector is the canonical per-stream feature reduction.
	FeatureVector = probe.FeatureVector
)

// PeriodicProbe describes a constant-rate probing stream.
func PeriodicProbe(rate Rate, pktSize Bytes, count int) ProbeSpec {
	return probe.Periodic(rate, pktSize, count)
}

// Probe sends one probing stream over the transport and returns the
// delivered record, honoring ctx cancellation.
func Probe(ctx context.Context, t Transport, spec ProbeSpec) (*ProbeRecord, error) {
	return core.Probe(ctx, t, spec)
}

// ExtractFeatures reduces a delivered probing stream to the canonical
// feature vector. It never panics and never produces NaN or Inf, no
// matter how degenerate the record (all packets lost, duplicate
// timestamps, single packet).
func ExtractFeatures(r *ProbeRecord) FeatureVector { return probe.ExtractFeatures(r) }

// FeatureNames returns the feature column names in Values order.
func FeatureNames() []string { return probe.FeatureNames() }

// Learned-estimator model layer.
type (
	// LearnedWeights is the serialized ridge + k-NN model the learned
	// tool runs; ParseLearnedWeights reads one, LearnedTrain fits one.
	LearnedWeights = learned.Weights
	// LearnedTrainConfig tunes LearnedTrain.
	LearnedTrainConfig = learned.TrainConfig
	// ProbePlan is the probing schedule shared by dataset generation
	// and the online learned estimator.
	ProbePlan = learned.ProbePlan
)

// DefaultLearnedWeights returns the committed embedded weights.
func DefaultLearnedWeights() (*LearnedWeights, error) { return learned.Default() }

// ParseLearnedWeights decodes and validates a weight file.
func ParseLearnedWeights(data []byte) (*LearnedWeights, error) { return learned.Parse(data) }

// LearnedTrain fits the ridge + k-NN model on raw model inputs (built
// with LearnedModelInput) and targets A/C. Deterministic: same inputs,
// same weights.
func LearnedTrain(X [][]float64, y []float64, cfg LearnedTrainConfig) (*LearnedWeights, error) {
	return learned.Train(X, y, cfg)
}

// LearnedModelInput assembles one model input from a stream's feature
// vector, its probing rate as a fraction of the tight-link capacity,
// and the capacity in Mbps — the exact vector the learned tool builds
// online.
func LearnedModelInput(f FeatureVector, rateFrac, capacityMbps float64) []float64 {
	return learned.ModelInput(f, rateFrac, capacityMbps)
}

// LearnedModelInputNames returns the model input column names.
func LearnedModelInputNames() []string {
	return learned.ModelInputNames(probe.FeatureNames())
}
